"""LEAST-SP: the sparse-matrix implementation of LEAST (Section IV of the paper).

When the number of variables reaches tens of thousands, a dense ``d × d``
weight matrix no longer fits in memory (a 100k-node graph would need 80 GB).
LEAST-SP therefore keeps ``W`` in CSR format end to end:

* the candidate matrix is initialized as a random sparse matrix with density
  ``ζ`` (Glorot-uniform values);
* the spectral-bound constraint and its gradient are evaluated on the sparse
  support only (``O(k·s)`` work);
* the data-fit gradient is evaluated only at the support positions;
* Adam state (first/second moments) lives on the flat data vector of the CSR
  matrix and shrinks together with the support when thresholding removes
  entries, so no dense intermediate is ever materialized.

The total memory footprint is ``O(s + B·d)`` where ``s`` is the number of
non-zero weights and ``B`` the batch size, matching the complexity analysis in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.acyclicity import SpectralAcyclicityBound
from repro.core.losses import LeastSquaresLoss, sample_batch
from repro.core.optimizers import SparseAdamOptimizer
from repro.exceptions import ValidationError
from repro.utils.logging import RunLog
from repro.utils.random import RandomState, as_generator
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_unit_interval,
    ensure_2d,
)

__all__ = [
    "SparseLEASTConfig",
    "SparseLEASTResult",
    "SparseLEAST",
    "random_sparse_glorot",
    "correlation_support",
]


def correlation_support(
    data: np.ndarray,
    max_parents: int = 10,
    rng: np.random.Generator | None = None,
    init_scale: float = 0.01,
) -> sp.csr_matrix:
    """Candidate-edge support built from marginal correlations.

    LEAST-SP keeps the support of ``W`` fixed (it can only shrink), so the
    initial support determines which edges are learnable at all.  A purely
    random support (the paper's ζ-density initialization) is fine for the
    scalability study but cannot recover specific true edges; this helper
    instead seeds the support with, for every node, its ``max_parents`` most
    correlated other variables (in both directions), which is a standard
    screening step for high-dimensional sparse regression.

    Returns a CSR matrix with small random values (±``init_scale``) on the
    selected support.  Memory is ``O(d²)`` transiently for the correlation
    matrix, so use it for up to a few thousand nodes; beyond that, fall back
    to the random initialization.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValidationError("data must be a 2-D sample matrix")
    if max_parents < 1:
        raise ValidationError(f"max_parents must be >= 1, got {max_parents}")
    rng = rng if rng is not None else np.random.default_rng()
    d = data.shape[1]
    centered = data - data.mean(axis=0, keepdims=True)
    std = centered.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    normalized = centered / std
    correlation = np.abs(normalized.T @ normalized) / max(data.shape[0], 1)
    np.fill_diagonal(correlation, 0.0)

    rows: list[int] = []
    cols: list[int] = []
    k = min(max_parents, d - 1)
    for node in range(d):
        candidates = np.argpartition(-correlation[:, node], k - 1)[:k]
        for parent in candidates:
            if parent != node:
                rows.append(int(parent))
                cols.append(node)
    values = rng.uniform(-init_scale, init_scale, size=len(rows))
    support = sp.csr_matrix((values, (rows, cols)), shape=(d, d))
    support.sum_duplicates()
    return support


def random_sparse_glorot(
    n_nodes: int,
    density: float,
    rng: np.random.Generator,
    min_edges: int = 8,
) -> sp.csr_matrix:
    """Random CSR matrix with ``density`` off-diagonal non-zeros (Glorot values).

    The number of non-zeros is ``max(min_edges, density · d²)``; positions are
    sampled uniformly without replacement among the off-diagonal cells.
    """
    check_probability(density, "density")
    if n_nodes < 2:
        return sp.csr_matrix((n_nodes, n_nodes))
    target = int(round(density * n_nodes * n_nodes))
    target = max(min(target, n_nodes * (n_nodes - 1)), min(min_edges, n_nodes * (n_nodes - 1)))
    limit = np.sqrt(3.0 / n_nodes)

    # Rejection-free sampling of off-diagonal flat indices.
    chosen: set[int] = set()
    while len(chosen) < target:
        needed = target - len(chosen)
        candidates = rng.integers(0, n_nodes * n_nodes, size=2 * needed + 8)
        for flat in candidates:
            row, col = divmod(int(flat), n_nodes)
            if row != col:
                chosen.add(int(flat))
                if len(chosen) >= target:
                    break
    flat_indices = np.fromiter(chosen, dtype=np.int64, count=len(chosen))
    rows, cols = np.divmod(flat_indices, n_nodes)
    values = rng.uniform(-limit, limit, size=len(flat_indices))
    matrix = sp.csr_matrix((values, (rows, cols)), shape=(n_nodes, n_nodes))
    matrix.sum_duplicates()
    return matrix


@dataclass(frozen=True)
class SparseLEASTConfig:
    """Hyper-parameters of LEAST-SP (paper defaults for the scalability runs).

    Attributes
    ----------
    k:
        Rounds of the spectral-bound iteration (paper: 5).
    alpha:
        Row/column balancing factor of the bound (paper: 0.9).
    l1_penalty:
        λ of the L1 regularizer on the support values.
    learning_rate:
        Adam step size for the sparse inner loop.
    init_density:
        Density ζ of the random sparse support initialization (paper: 1e-4).
    batch_size:
        Mini-batch size B; ``None`` uses the full sample matrix.  Defaults to
        1000 because LEAST-SP targets sample matrices too large to batch
        fully.
    threshold:
        In-loop hard-thresholding value θ; entries falling below it are
        removed from the support (the support can only shrink).
    tolerance:
        Target value ε for the acyclicity measure.
    max_outer_iterations, max_inner_iterations:
        Iteration caps T_o and T_i of the two loops.
    rho_start, rho_growth, rho_max:
        Initial quadratic penalty, its growth factor per outer iteration, and
        a cap preventing numerical overflow.
    eta_start:
        Initial value of the Lagrange multiplier η.
    inner_convergence_tol:
        Relative change of ℓ(W) below which the inner loop stops early.
    min_init_edges:
        Floor on the number of non-zeros in the random support so tiny graphs
        never start empty.
    support:
        How the initial candidate support is built when no explicit
        ``initial_support``/``init_weights`` is given: ``"random"`` draws the
        paper's ζ-density random support, ``"correlation"`` screens each
        node's ``support_max_parents`` most correlated partners via
        :func:`correlation_support` (the choice the sharded serving path
        makes per block, where the transient ``d_block²`` correlation matrix
        is small).
    support_max_parents:
        Candidate parents per node for the ``"correlation"`` support.
    """

    k: int = 5
    alpha: float = 0.9
    l1_penalty: float = 0.05
    learning_rate: float = 0.02
    init_density: float = 1e-4
    batch_size: int | None = 1000
    threshold: float = 1e-3
    tolerance: float = 1e-4
    max_outer_iterations: int = 25
    max_inner_iterations: int = 400
    rho_start: float = 0.1
    rho_growth: float = 3.0
    rho_max: float = 1e16
    eta_start: float = 0.0
    inner_convergence_tol: float = 1e-6
    min_init_edges: int = 8
    support: str = "random"
    support_max_parents: int = 10

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValidationError(f"k must be >= 0, got {self.k}")
        check_unit_interval(self.alpha, "alpha")
        check_non_negative(self.l1_penalty, "l1_penalty")
        check_positive(self.learning_rate, "learning_rate")
        check_probability(self.init_density, "init_density")
        check_non_negative(self.threshold, "threshold")
        check_positive(self.tolerance, "tolerance")
        check_positive(self.max_outer_iterations, "max_outer_iterations")
        check_positive(self.max_inner_iterations, "max_inner_iterations")
        check_positive(self.rho_start, "rho_start")
        check_positive(self.rho_growth, "rho_growth")
        check_positive(self.rho_max, "rho_max")
        check_non_negative(self.eta_start, "eta_start")
        if self.support not in ("random", "correlation"):
            raise ValidationError(
                f"support must be 'random' or 'correlation', got {self.support!r}"
            )
        if self.support_max_parents < 1:
            raise ValidationError(
                f"support_max_parents must be >= 1, got {self.support_max_parents}"
            )


@dataclass
class SparseLEASTResult:
    """Outcome of a LEAST-SP run: CSR weights plus the per-iteration trace."""

    weights: sp.csr_matrix
    constraint_value: float
    converged: bool
    n_outer_iterations: int
    elapsed_seconds: float
    n_inner_iterations: int = 0
    log: RunLog = field(default_factory=RunLog)


class SparseLEAST:
    """Sparse-matrix LEAST solver (the paper's LEAST-SP analog)."""

    def __init__(self, config: SparseLEASTConfig | None = None):
        self.config = config or SparseLEASTConfig()
        self._bound = SpectralAcyclicityBound(k=self.config.k, alpha=self.config.alpha)
        self._loss = LeastSquaresLoss(l1_penalty=self.config.l1_penalty)

    def fit(
        self,
        data,
        seed: RandomState = None,
        initial_support: sp.spmatrix | None = None,
        init_weights: np.ndarray | sp.spmatrix | None = None,
        on_outer_iteration=None,
    ) -> SparseLEASTResult:
        """Learn a sparse weighted DAG from the ``n × d`` sample matrix.

        Parameters
        ----------
        initial_support:
            Optional sparse matrix whose non-zero pattern (and values) seed the
            candidate edge set — e.g. the output of
            :func:`correlation_support`.  When omitted the support comes from
            ``config.support``: a random support of density ``init_density``
            (the paper's LEAST-SP initialization) or a per-node
            correlation screen.
        init_weights:
            Warm-start matrix (dense or sparse) from a previous solve, used by
            :mod:`repro.serve` for incremental re-learning.  Dense input is
            sparsified (zeros and the diagonal are dropped).  Mutually
            exclusive with ``initial_support``.
        on_outer_iteration:
            Optional ``callback(outer_iteration)`` invoked after every outer
            iteration (the :class:`repro.core.backend.SolverBackend` deadline
            hook point); raising from it aborts the solve.
        """
        data = ensure_2d(data, "data")
        rng = as_generator(seed)
        config = self.config
        d = data.shape[1]

        if initial_support is not None and init_weights is not None:
            raise ValidationError(
                "pass either initial_support or init_weights, not both"
            )
        if init_weights is not None:
            initial_support = self._coerce_init(init_weights)
        rho = config.rho_start
        eta = config.eta_start
        if initial_support is not None:
            weights = initial_support.tocsr().astype(float)
            if weights.shape != (d, d):
                raise ValidationError(
                    f"initial_support must have shape ({d}, {d}), got {weights.shape}"
                )
        elif config.support == "correlation":
            weights = correlation_support(
                data, max_parents=config.support_max_parents, rng=rng
            )
        else:
            weights = random_sparse_glorot(d, config.init_density, rng, config.min_init_edges)
        log = RunLog()
        timer = Timer()
        timer.start()

        converged = False
        constraint = np.inf
        outer_iteration = 0
        total_inner = 0
        for outer_iteration in range(1, config.max_outer_iterations + 1):
            weights, constraint, objective, inner_steps = self._inner(
                data, weights, rho, eta, rng
            )
            total_inner += inner_steps
            log.append(
                outer_iteration=outer_iteration,
                loss=objective,
                delta=constraint,
                rho=rho,
                eta=eta,
                n_edges=float(weights.nnz),
                inner_iterations=float(inner_steps),
                wall_clock=self._current_elapsed(timer),
            )
            if on_outer_iteration is not None:
                on_outer_iteration(outer_iteration)
            if constraint <= config.tolerance:
                converged = True
                break
            eta = eta + rho * constraint
            rho = min(rho * config.rho_growth, config.rho_max)

        elapsed = timer.stop()
        return SparseLEASTResult(
            weights=weights,
            constraint_value=constraint,
            converged=converged,
            n_outer_iterations=outer_iteration,
            elapsed_seconds=elapsed,
            n_inner_iterations=total_inner,
            log=log,
        )

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _coerce_init(init_weights: np.ndarray | sp.spmatrix) -> sp.csr_matrix:
        """Turn a dense or sparse warm-start matrix into a clean CSR support."""
        if sp.issparse(init_weights):
            matrix = init_weights.tocsr().astype(float).copy()
        else:
            dense = np.asarray(init_weights, dtype=float)
            if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
                raise ValidationError(
                    f"init_weights must be a square matrix, got shape {dense.shape}"
                )
            matrix = sp.csr_matrix(dense)
        matrix.setdiag(0.0)
        matrix.eliminate_zeros()
        return matrix

    @staticmethod
    def _current_elapsed(timer: Timer) -> float:
        """Wall-clock seconds since the run started (timer still running)."""
        return timer.peek()

    def _inner(
        self,
        data: np.ndarray,
        weights: sp.csr_matrix,
        rho: float,
        eta: float,
        rng: np.random.Generator,
    ) -> tuple[sp.csr_matrix, float, float, int]:
        """Sparse inner loop: Adam on the support values with hard thresholding."""
        config = self.config
        optimizer = SparseAdamOptimizer(learning_rate=config.learning_rate)
        previous_objective = np.inf
        objective = np.inf

        weights = weights.tocsr().copy()
        weights.sum_duplicates()
        weights.eliminate_zeros()

        steps = 0
        for steps in range(1, config.max_inner_iterations + 1):
            if weights.nnz == 0:
                break
            batch = sample_batch(data, config.batch_size, rng)

            constraint, constraint_gradient = self._bound.value_and_gradient(weights)
            loss_value, loss_gradient_data = self._loss.sparse_value_and_gradient(weights, batch)

            coo = weights.tocoo()
            constraint_gradient_data = np.asarray(
                constraint_gradient.tocsr()[coo.row, coo.col]
            ).ravel()
            gradient_data = (
                loss_gradient_data + (rho * constraint + eta) * constraint_gradient_data
            )

            objective = loss_value + 0.5 * rho * constraint**2 + eta * constraint

            new_data = optimizer.update(coo.data, gradient_data)

            if config.threshold > 0:
                keep = np.abs(new_data) >= config.threshold
            else:
                keep = np.ones_like(new_data, dtype=bool)
            keep &= coo.row != coo.col
            if not np.all(keep):
                optimizer.shrink_support(keep)
            weights = sp.csr_matrix(
                (new_data[keep], (coo.row[keep], coo.col[keep])), shape=weights.shape
            )

            if np.isfinite(previous_objective):
                denominator = max(abs(previous_objective), 1e-12)
                if abs(previous_objective - objective) / denominator < config.inner_convergence_tol:
                    break
            previous_objective = objective

        constraint = self._bound.value(weights) if weights.nnz else 0.0
        return weights, constraint, float(objective if np.isfinite(objective) else 0.0), steps
