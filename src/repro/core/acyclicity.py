"""Spectral-radius acyclicity bound — the paper's core contribution (Section III).

A weighted digraph ``G(W)`` is acyclic iff the spectral radius of the
non-negative matrix ``S = W ∘ W`` is zero.  Computing the spectral radius
exactly costs ``O(d^3)``; the paper instead optimizes a differentiable *upper
bound* ``δ^(k)(W)`` obtained from ``k`` rounds of a diagonal similarity
transformation driven by row and column sums (Eq. 4/5):

    S^(0) = W ∘ W
    b^(j) = r(S^(j))^α ∘ c(S^(j))^(1-α)
    S^(j+1) = Diag(b^(j))^{-1} S^(j) Diag(b^(j))
    δ^(k) = Σ_i b^(k)[i]

Both the bound and its gradient only need the non-zero entries of ``S``, so
the cost is ``O(k·s)`` time and ``O(s)`` space for a matrix with ``s``
non-zeros — near linear in ``d`` for sparse DAGs, versus the ``O(d^3)`` /
``O(d^2)`` cost of the matrix-exponential constraint used by NOTEARS.

The gradient is obtained by reverse-mode differentiation of the iteration
(Lemmas 3–5 of the paper).  Following Lemma 5, all intermediate gradient
matrices are masked to the support of ``W``: entries outside the support never
influence ``∇_W δ = 2 ∇_S δ ∘ W``, so the backward pass also stays sparse.

Two code paths are provided with identical semantics: a dense numpy path
(used by :class:`repro.core.least.LEAST`, the analog of the paper's LEAST-TF)
and a CSR-sparse path (used by :class:`repro.core.least_sparse.SparseLEAST`,
the analog of LEAST-SP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_square_matrix, check_unit_interval

__all__ = [
    "SpectralAcyclicityBound",
    "spectral_bound",
    "spectral_bound_gradient",
    "spectral_bound_with_gradient",
    "spectral_radius",
]


def spectral_radius(matrix) -> float:
    """Exact spectral radius of a square matrix (dense eigen decomposition).

    This is an ``O(d^3)`` reference routine used by tests to validate that the
    bound really is an upper bound; it is never used inside the solvers.
    """
    matrix = check_square_matrix(matrix, "matrix")
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    if dense.size == 0:
        return 0.0
    eigenvalues = np.linalg.eigvals(dense)
    return float(np.max(np.abs(eigenvalues)))


def _safe_power(values: np.ndarray, exponent: float) -> np.ndarray:
    """Element-wise ``values ** exponent`` with the convention ``0 ** 0 = 1``.

    ``values`` must be non-negative.  For ``exponent == 0`` the result is all
    ones (so that ``α = 0`` or ``α = 1`` reduce the bound to pure column or
    row sums); otherwise zeros stay zero.
    """
    if exponent == 0.0:
        return np.ones_like(values)
    return np.power(values, exponent)


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Element-wise division returning 0 where the denominator is 0.

    Quotients that overflow to +/-inf (denominators that underflowed to a
    subnormal value) are also mapped to 0: they correspond to directions where
    the bound is effectively non-differentiable and any subgradient is valid.
    """
    out = np.zeros_like(numerator, dtype=float)
    mask = denominator != 0
    with np.errstate(over="ignore", invalid="ignore"):
        out[mask] = numerator[mask] / denominator[mask]
    out[~np.isfinite(out)] = 0.0
    return out


# ---------------------------------------------------------------------------
# Dense forward / backward
# ---------------------------------------------------------------------------


def _forward_dense(s0: np.ndarray, k: int, alpha: float) -> tuple[float, list[np.ndarray], list[np.ndarray]]:
    """Run the forward iteration on a dense non-negative matrix.

    Returns the bound value, the list ``[S^(0), ..., S^(k)]`` and the list of
    balance vectors ``[b^(0), ..., b^(k)]`` needed by the backward pass.
    """
    matrices = [s0]
    balances: list[np.ndarray] = []
    current = s0
    for j in range(k + 1):
        row_sums = current.sum(axis=1)
        col_sums = current.sum(axis=0)
        balance = _safe_power(row_sums, alpha) * _safe_power(col_sums, 1.0 - alpha)
        balances.append(balance)
        if j <= k - 1:
            inverse_balance = _safe_divide(np.ones_like(balance), balance)
            current = (inverse_balance[:, None] * current) * balance[None, :]
            matrices.append(current)
    bound = float(balances[-1].sum())
    return bound, matrices, balances


def _xy_vectors(
    matrix: np.ndarray | sp.spmatrix, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the x and y vectors of Lemma 3 for one level of the iteration.

    ``x[i] = α (c_i / r_i)^(1-α)`` and ``y[i] = (1-α) (r_i / c_i)^α`` are the
    partial derivatives of ``b[i]`` with respect to the row sum and column sum
    respectively.  Positions with zero row or column sums get zero, which is a
    valid subgradient choice at those (non-differentiable) points.
    """
    if sp.issparse(matrix):
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        col_sums = np.asarray(matrix.sum(axis=0)).ravel()
    else:
        row_sums = matrix.sum(axis=1)
        col_sums = matrix.sum(axis=0)
    ratio_cr = _safe_divide(col_sums, row_sums)
    ratio_rc = _safe_divide(row_sums, col_sums)
    x = alpha * _safe_power(ratio_cr, 1.0 - alpha)
    y = (1.0 - alpha) * _safe_power(ratio_rc, alpha)
    return x, y


def _backward_dense(
    matrices: list[np.ndarray],
    balances: list[np.ndarray],
    mask: np.ndarray,
    alpha: float,
) -> np.ndarray:
    """Reverse-mode differentiation of the dense forward pass.

    Implements Lemmas 3–5: the gradient is accumulated only on ``mask`` (the
    support of W), which is exact because off-support entries are multiplied
    by ``W = 0`` when forming ``∇_W δ``.
    """
    k = len(matrices) - 1
    x_k, y_k = _xy_vectors(matrices[k], alpha)
    gradient = (x_k[:, None] + y_k[None, :]) * mask

    for j in range(k, 0, -1):
        previous = matrices[j - 1]
        balance = balances[j - 1]
        x_prev, y_prev = _xy_vectors(previous, alpha)

        inverse_balance = _safe_divide(np.ones_like(balance), balance)
        inverse_balance_sq = _safe_divide(np.ones_like(balance), balance**2)

        # z[i]: total effect of b^{(j-1)}[i] on the bound through S^{(j)} (Eq. 7).
        scaled = gradient * previous * balance[None, :]
        z = -scaled.sum(axis=1) * inverse_balance_sq
        z += (inverse_balance[:, None] * gradient * previous).sum(axis=0)

        gradient = (
            inverse_balance[:, None] * gradient * balance[None, :]
            + (x_prev * z)[:, None] * mask
            + (y_prev * z)[None, :] * mask
        )
        gradient = gradient * mask
    return gradient


# ---------------------------------------------------------------------------
# Sparse (CSR) forward / backward
# ---------------------------------------------------------------------------


def _scale_rows_cols(matrix: sp.csr_matrix, row_scale: np.ndarray, col_scale: np.ndarray) -> sp.csr_matrix:
    """Return ``diag(row_scale) @ matrix @ diag(col_scale)`` without densifying."""
    result = matrix.tocoo(copy=True)
    result.data = result.data * row_scale[result.row] * col_scale[result.col]
    return result.tocsr()


def _forward_sparse(
    s0: sp.csr_matrix, k: int, alpha: float
) -> tuple[float, list[sp.csr_matrix], list[np.ndarray]]:
    """Sparse counterpart of :func:`_forward_dense` (CSR matrices throughout)."""
    matrices = [s0]
    balances: list[np.ndarray] = []
    current = s0
    for j in range(k + 1):
        row_sums = np.asarray(current.sum(axis=1)).ravel()
        col_sums = np.asarray(current.sum(axis=0)).ravel()
        balance = _safe_power(row_sums, alpha) * _safe_power(col_sums, 1.0 - alpha)
        balances.append(balance)
        if j <= k - 1:
            inverse_balance = _safe_divide(np.ones_like(balance), balance)
            current = _scale_rows_cols(current, inverse_balance, balance)
            matrices.append(current)
    bound = float(balances[-1].sum())
    return bound, matrices, balances


def _backward_sparse(
    matrices: list[sp.csr_matrix],
    balances: list[np.ndarray],
    mask: sp.csr_matrix,
    alpha: float,
) -> sp.csr_matrix:
    """Sparse reverse-mode pass; the returned gradient shares the mask's support."""
    k = len(matrices) - 1
    mask_coo = mask.tocoo()
    rows, cols = mask_coo.row, mask_coo.col

    x_k, y_k = _xy_vectors(matrices[k], alpha)
    gradient_data = x_k[rows] + y_k[cols]

    for j in range(k, 0, -1):
        previous = matrices[j - 1]
        balance = balances[j - 1]
        x_prev, y_prev = _xy_vectors(previous, alpha)

        inverse_balance = _safe_divide(np.ones_like(balance), balance)
        inverse_balance_sq = _safe_divide(np.ones_like(balance), balance**2)

        # The gradient and S^{(j-1)} share the mask's support, so the products
        # in Eq. (7) reduce to element-wise products of the data arrays.
        previous_data = np.asarray(previous[rows, cols]).ravel()
        grad_times_prev = gradient_data * previous_data

        # z[i] = -Σ_q G[i,q] S[i,q] b[q] / b[i]^2 + Σ_p G[p,i] S[p,i] / b[p]
        d = mask.shape[0]
        z = np.zeros(d)
        np.add.at(z, rows, -grad_times_prev * balance[cols])
        z *= inverse_balance_sq
        np.add.at(z, cols, grad_times_prev * inverse_balance[rows])

        gradient_data = (
            gradient_data * inverse_balance[rows] * balance[cols]
            + x_prev[rows] * z[rows]
            + y_prev[cols] * z[cols]
        )

    return sp.csr_matrix((gradient_data, (rows, cols)), shape=mask.shape)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpectralAcyclicityBound:
    """Callable object computing ``δ^(k)(W)`` and ``∇_W δ^(k)(W)``.

    Parameters
    ----------
    k:
        Number of diagonal-transformation rounds.  The paper finds ``k ≈ 5``
        sufficient; larger values tighten the bound at linear extra cost.
    alpha:
        Balancing factor in ``[0, 1]`` between row sums and column sums
        (paper default 0.9).
    """

    k: int = 5
    alpha: float = 0.9

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValidationError(f"k must be >= 0, got {self.k}")
        check_unit_interval(self.alpha, "alpha")

    def value(self, weights) -> float:
        """Return the bound ``δ^(k)(W)``; zero iff (numerically) acyclic."""
        weights = check_square_matrix(weights, "weights")
        if sp.issparse(weights):
            s0 = weights.multiply(weights).tocsr()
            bound, _, _ = _forward_sparse(s0, self.k, self.alpha)
        else:
            s0 = np.asarray(weights, dtype=float) ** 2
            bound, _, _ = _forward_dense(s0, self.k, self.alpha)
        return bound

    def gradient(self, weights):
        """Return ``∇_W δ^(k)(W)`` with the same storage type as ``weights``."""
        return self.value_and_gradient(weights)[1]

    def value_and_gradient(self, weights):
        """Return ``(δ^(k)(W), ∇_W δ^(k)(W))`` sharing one forward pass."""
        weights = check_square_matrix(weights, "weights")
        if sp.issparse(weights):
            weights = weights.tocsr().copy()
            weights.eliminate_zeros()
            s0 = weights.multiply(weights).tocsr()
            bound, matrices, balances = _forward_sparse(s0, self.k, self.alpha)
            mask = weights.copy()
            mask.data = np.ones_like(mask.data)
            grad_s = _backward_sparse(matrices, balances, mask.tocsr(), self.alpha)
            gradient = grad_s.multiply(weights) * 2.0
            return bound, gradient.tocsr()
        dense = np.asarray(weights, dtype=float)
        s0 = dense**2
        bound, matrices, balances = _forward_dense(s0, self.k, self.alpha)
        mask = (dense != 0).astype(float)
        grad_s = _backward_dense(matrices, balances, mask, self.alpha)
        return bound, 2.0 * grad_s * dense

    def __call__(self, weights) -> float:
        return self.value(weights)


def spectral_bound(weights, k: int = 5, alpha: float = 0.9) -> float:
    """Functional form of :meth:`SpectralAcyclicityBound.value`."""
    return SpectralAcyclicityBound(k=k, alpha=alpha).value(weights)


def spectral_bound_gradient(weights, k: int = 5, alpha: float = 0.9):
    """Functional form of :meth:`SpectralAcyclicityBound.gradient`."""
    return SpectralAcyclicityBound(k=k, alpha=alpha).gradient(weights)


def spectral_bound_with_gradient(weights, k: int = 5, alpha: float = 0.9):
    """Functional form of :meth:`SpectralAcyclicityBound.value_and_gradient`."""
    return SpectralAcyclicityBound(k=k, alpha=alpha).value_and_gradient(weights)
