"""Post-processing of learned weight matrices.

After the continuous optimization converges, the paper filters the learned
matrix with a small threshold ``τ`` to obtain the final graph (Section V-A).
:func:`threshold_weights` applies a fixed threshold; :func:`threshold_to_dag`
raises the threshold just enough to break any remaining cycles, which is the
standard way to guarantee the returned structure is a DAG.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graph.adjacency import threshold_matrix, to_dense
from repro.graph.dag import is_dag

__all__ = ["threshold_weights", "threshold_to_dag"]


def threshold_weights(weights, threshold: float):
    """Zero out entries of ``weights`` with ``|value| < threshold``.

    Preserves the storage type (dense in, dense out; sparse in, sparse out).
    """
    return threshold_matrix(weights, threshold)


def threshold_to_dag(weights, initial_threshold: float = 0.0, max_threshold: float | None = None):
    """Return the smallest-threshold filtered matrix that is a DAG.

    Starting from ``initial_threshold``, candidate thresholds are the distinct
    absolute weight values; the function walks them in increasing order and
    returns the first filtered matrix whose graph is acyclic.  Because an
    all-zero matrix is trivially acyclic the procedure always terminates.

    Parameters
    ----------
    weights:
        Learned weight matrix (dense or sparse).
    initial_threshold:
        Entries below this magnitude are removed before the search starts.
    max_threshold:
        Optional cap; if breaking all cycles requires a larger threshold a
        :class:`repro.exceptions.ValidationError` is raised.

    Returns
    -------
    (matrix, threshold):
        The filtered matrix (same storage type as the input) and the
        threshold that produced it.
    """
    if initial_threshold < 0:
        raise ValidationError(f"initial_threshold must be >= 0, got {initial_threshold}")
    current = threshold_matrix(weights, initial_threshold)
    if is_dag(current):
        return current, float(initial_threshold)

    if sp.issparse(current):
        # Candidate thresholds straight off the stored values — the sparse
        # serving path must never materialize a dense d × d here.
        magnitudes = np.abs(current.tocsr().data)
        candidates = np.unique(magnitudes[magnitudes > 0])
    else:
        dense = np.abs(to_dense(current))
        candidates = np.unique(dense[dense > 0])
    for candidate in candidates:
        # Removing every entry <= candidate: use a strictly-larger threshold.
        threshold = float(np.nextafter(candidate, np.inf))
        if max_threshold is not None and threshold > max_threshold:
            raise ValidationError(
                f"no DAG-producing threshold found below max_threshold={max_threshold}"
            )
        filtered = threshold_matrix(weights, threshold)
        if is_dag(filtered):
            return filtered, threshold
    # Unreachable in practice: removing every edge yields an empty (acyclic) graph.
    empty = threshold_matrix(weights, float(np.inf))
    return empty, float(np.inf)
