"""LEAST with a fused, JIT-compiled inner loop (the ``least_fast`` backend).

The reference dense solver (:class:`repro.core.least.LEAST`) spends nearly all
of its wall clock in the inner Adam loop, and nearly all of *that* in numpy
temporaries: every iteration of the reference path allocates fresh arrays for
the spectral-bound forward matrices, the backward-pass intermediates, the
combined gradient, the Adam moment updates, and the hard-threshold mask —
roughly fifty ``d × d`` memory passes per step.  The algorithm itself is cheap
(the paper's point); the implementation overhead is not.

This module keeps the outer augmented-Lagrangian loop of :class:`LEAST`
verbatim (it subclasses it, so warm starts, ``track_h``, history, and the
``on_outer_iteration`` hook behave identically) and replaces only the inner
loop with a fused pipeline over preallocated buffers:

* the per-batch residual and loss gradient are computed with ``out=`` BLAS
  calls into reusable buffers;
* the spectral-bound value **and** gradient are produced by one kernel that
  runs the forward and reverse passes over a preallocated ``(k+1, d, d)``
  workspace;
* the L1 subgradient, penalty-gradient combine, diagonal zeroing, Adam moment
  update, bias correction, weight step, and in-loop hard thresholding are
  fused into a single elementwise kernel.

Two interchangeable kernel sets implement that pipeline:

* **numba** (``jit="numba"``): nopython-compiled loops, one pass over memory
  per kernel.  Compiled lazily on first use; call :func:`warmup_jit` to pay
  compilation outside a timed region.
* **numpy** (``jit="numpy"``): the same math expressed with ``out=`` numpy
  calls over the same preallocated buffers — no JIT dependency, fewer
  temporaries than the reference path.

``jit="auto"`` (the default) picks numba when the package is importable and
falls back to numpy otherwise, so the backend is safe to register and ship to
worker processes on machines without numba installed.

Both kernel sets follow the reference implementation's operation order, so
results match the reference solver to floating-point tolerance: the parity
suite (``tests/test_least_fast.py``) asserts identical thresholded edge sets
and near-identical objectives on seeded problems.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

import numpy as np

from repro.core.acyclicity import _safe_divide, _safe_power
from repro.core.least import LEAST, LEASTConfig
from repro.exceptions import ValidationError

__all__ = [
    "FastLEASTConfig",
    "FastLEAST",
    "numba_available",
    "resolve_jit",
    "warmup_jit",
]

try:  # numba is an optional accelerator, never a hard dependency
    import numba as _numba
except ImportError:  # pragma: no cover - exercised by the no-numba CI leg
    _numba = None


def numba_available() -> bool:
    """True when the numba package is importable in this interpreter."""
    return _numba is not None


def resolve_jit(jit: str) -> str:
    """Map a ``FastLEASTConfig.jit`` value to the kernel set actually used.

    ``"auto"`` resolves to ``"numba"`` when available and ``"numpy"``
    otherwise; ``"numba"`` raises :class:`~repro.exceptions.ValidationError`
    when the package is missing (an explicit request must not silently
    degrade).
    """
    if jit == "auto":
        return "numba" if numba_available() else "numpy"
    if jit == "numba" and not numba_available():
        raise ValidationError(
            "jit='numba' was requested but the numba package is not "
            "importable; install numba or use jit='auto'"
        )
    return jit


# ---------------------------------------------------------------------------
# Kernels: plain-Python loop bodies, numba-compiled when available
# ---------------------------------------------------------------------------
#
# The loop bodies below are written against the *reference* operation order
# (see repro.core.acyclicity and repro.core.optimizers) so that the fused
# path stays within floating-point tolerance of the reference solver.


def _py_pow_safe(value: float, exponent: float) -> float:
    """Scalar ``value ** exponent`` with the ``0 ** 0 = 1`` convention."""
    if exponent == 0.0:
        return 1.0
    return value**exponent


def _py_div_safe(numerator: float, denominator: float) -> float:
    """Scalar division with 0-denominators (and overflow) mapped to 0."""
    if denominator == 0.0:
        return 0.0
    quotient = numerator / denominator
    if not np.isfinite(quotient):
        return 0.0
    return quotient


def _py_bound_kernel(weights, smats, rsums, csums, balances, grad, cgrad, k, alpha):
    """Fused forward + reverse pass of the spectral acyclicity bound.

    Writes ``∇_W δ^(k)(W)`` into ``cgrad`` and returns the bound value.
    ``smats`` is a ``(k+1, d, d)`` workspace holding the balanced matrices,
    ``rsums``/``csums``/``balances`` are ``(k+1, d)`` per-level vectors, and
    ``grad`` is a ``(d, d)`` scratch for the backward accumulation.
    """
    d = weights.shape[0]
    one_minus_alpha = 1.0 - alpha

    for i in range(d):
        for q in range(d):
            smats[0, i, q] = weights[i, q] * weights[i, q]

    # Forward: k rounds of the diagonal similarity transformation.
    for j in range(k + 1):
        for i in range(d):
            row_total = 0.0
            for q in range(d):
                row_total += smats[j, i, q]
            rsums[j, i] = row_total
        for q in range(d):
            col_total = 0.0
            for i in range(d):
                col_total += smats[j, i, q]
            csums[j, q] = col_total
        for i in range(d):
            balances[j, i] = _py_pow_safe(rsums[j, i], alpha) * _py_pow_safe(
                csums[j, i], one_minus_alpha
            )
        if j < k:
            for i in range(d):
                inverse_balance = _py_div_safe(1.0, balances[j, i])
                for q in range(d):
                    smats[j + 1, i, q] = (smats[j, i, q] * inverse_balance) * balances[
                        j, q
                    ]
    bound = 0.0
    for i in range(d):
        bound += balances[k, i]

    # Backward (Lemmas 3-5): accumulate on the support of W only.
    x_vec = np.empty(d)
    y_vec = np.empty(d)
    z_vec = np.empty(d)
    inv_b = np.empty(d)
    inv_b2 = np.empty(d)

    for i in range(d):
        x_vec[i] = alpha * _py_pow_safe(
            _py_div_safe(csums[k, i], rsums[k, i]), one_minus_alpha
        )
        y_vec[i] = one_minus_alpha * _py_pow_safe(
            _py_div_safe(rsums[k, i], csums[k, i]), alpha
        )
    for i in range(d):
        for q in range(d):
            if weights[i, q] != 0.0:
                grad[i, q] = x_vec[i] + y_vec[q]
            else:
                grad[i, q] = 0.0

    for j in range(k, 0, -1):
        level = j - 1
        for i in range(d):
            x_vec[i] = alpha * _py_pow_safe(
                _py_div_safe(csums[level, i], rsums[level, i]), one_minus_alpha
            )
            y_vec[i] = one_minus_alpha * _py_pow_safe(
                _py_div_safe(rsums[level, i], csums[level, i]), alpha
            )
            inv_b[i] = _py_div_safe(1.0, balances[level, i])
            inv_b2[i] = _py_div_safe(1.0, balances[level, i] * balances[level, i])

        # z[i] = -Σ_q G[i,q] S[i,q] b[q] / b[i]^2 + Σ_p G[p,i] S[p,i] / b[p]
        for i in range(d):
            accumulator = 0.0
            for q in range(d):
                accumulator += grad[i, q] * smats[level, i, q] * balances[level, q]
            z_vec[i] = -accumulator * inv_b2[i]
        for q in range(d):
            accumulator = 0.0
            for i in range(d):
                accumulator += (inv_b[i] * grad[i, q]) * smats[level, i, q]
            z_vec[q] += accumulator

        for i in range(d):
            for q in range(d):
                if weights[i, q] != 0.0:
                    grad[i, q] = (
                        (inv_b[i] * grad[i, q]) * balances[level, q]
                        + x_vec[i] * z_vec[i]
                        + y_vec[q] * z_vec[q]
                    )
                else:
                    grad[i, q] = 0.0

    for i in range(d):
        for q in range(d):
            cgrad[i, q] = (2.0 * grad[i, q]) * weights[i, q]
    return bound


def _py_update_kernel(
    weights,
    grad,
    cgrad,
    penalty_coefficient,
    l1_penalty,
    first_moment,
    second_moment,
    bias1,
    bias2,
    learning_rate,
    beta1,
    beta2,
    epsilon,
    threshold,
):
    """Fused gradient combine + Adam step + thresholding, in place on ``weights``.

    ``grad`` holds the smooth data-fit gradient ``(2/n) Xᵀ(XW - X)``; the L1
    subgradient, the penalty-gradient term ``(ρδ + η)·∇δ``, the diagonal
    zeroing, the Adam moment/bias arithmetic, and the in-loop hard threshold
    are all applied in one pass.  Returns ``Σ|W|`` of the *pre-update* weights
    (the L1 term of the objective, which the reference path evaluates before
    stepping).
    """
    d = weights.shape[0]
    one_minus_beta1 = 1.0 - beta1
    one_minus_beta2 = 1.0 - beta2
    abs_sum = 0.0
    for i in range(d):
        for q in range(d):
            w = weights[i, q]
            if w > 0.0:
                abs_sum += w
                sign = 1.0
            elif w < 0.0:
                abs_sum -= w
                sign = -1.0
            else:
                sign = 0.0
            if i == q:
                g = 0.0
            else:
                g = (grad[i, q] + l1_penalty * sign) + penalty_coefficient * cgrad[
                    i, q
                ]
            m = beta1 * first_moment[i, q] + one_minus_beta1 * g
            v = beta2 * second_moment[i, q] + one_minus_beta2 * (g * g)
            first_moment[i, q] = m
            second_moment[i, q] = v
            corrected_first = m / bias1
            corrected_second = v / bias2
            w = w - (learning_rate * corrected_first) / (
                np.sqrt(corrected_second) + epsilon
            )
            if i == q:
                w = 0.0
            elif threshold > 0.0 and (-threshold < w < threshold):
                w = 0.0
            weights[i, q] = w
    return abs_sum


#: Lazily numba-compiled (bound, update) kernel pair, or None before first use.
_COMPILED_KERNELS: tuple | None = None


def _numba_kernels() -> tuple:
    """Compile (once) and return the numba kernel pair."""
    global _COMPILED_KERNELS, _py_pow_safe, _py_div_safe
    if _COMPILED_KERNELS is None:
        if _numba is None:  # pragma: no cover - callers check numba_available
            raise ValidationError("numba is not available")
        jit = _numba.njit(cache=True, nogil=True)
        # Rebind the scalar helpers so the kernels resolve them to compiled
        # dispatchers at their own compile time.
        _py_pow_safe = jit(_py_pow_safe)
        _py_div_safe = jit(_py_div_safe)
        _COMPILED_KERNELS = (jit(_py_bound_kernel), jit(_py_update_kernel))
    return _COMPILED_KERNELS


def warmup_jit(d: int = 4) -> bool:
    """Compile the numba kernels on a tiny problem; returns True if compiled.

    Benchmarks call this before timing so kernel compilation is never charged
    to a measured region.  A no-op (returning False) when numba is absent.
    """
    if not numba_available():
        return False
    bound_kernel, update_kernel = _numba_kernels()
    k = 2
    weights = np.tri(d, k=-1) * 0.1
    workspace = _Workspace(d, k)
    bound_kernel(
        weights,
        workspace.smats,
        workspace.rsums,
        workspace.csums,
        workspace.balances,
        workspace.grad_s,
        workspace.cgrad,
        k,
        0.9,
    )
    update_kernel(
        weights,
        np.zeros((d, d)),
        workspace.cgrad,
        1.0,
        0.1,
        np.zeros((d, d)),
        np.zeros((d, d)),
        0.1,
        0.001,
        0.01,
        0.9,
        0.999,
        1e-8,
        0.0,
    )
    return True


# ---------------------------------------------------------------------------
# Preallocated per-fit workspace
# ---------------------------------------------------------------------------


class _Workspace:
    """All buffers one ``d``-node fused solve reuses across iterations."""

    def __init__(self, d: int, k: int) -> None:
        self.d = d
        self.k = k
        levels = k + 1
        self.smats = np.empty((levels, d, d))
        self.rsums = np.empty((levels, d))
        self.csums = np.empty((levels, d))
        self.balances = np.empty((levels, d))
        self.grad_s = np.empty((d, d))
        self.cgrad = np.empty((d, d))
        self.loss_grad = np.empty((d, d))
        self.first_moment = np.zeros((d, d))
        self.second_moment = np.zeros((d, d))
        self.scratch = np.empty((d, d))
        self.scratch2 = np.empty((d, d))
        self.mask = np.empty((d, d), dtype=bool)
        self.residual: np.ndarray | None = None  # (B, d); allocated per batch size
        self.residual_sq: np.ndarray | None = None
        # (d, B) scaled batch transpose.  Kept F-contiguous (a transpose view
        # of a C-ordered (B, d) base) to mirror the layout the reference's
        # ``(2/n) * X.T`` expression produces — the BLAS accumulation order
        # depends on it, and a C-ordered buffer here drifts by 1 ulp.
        self.scaled_t: np.ndarray | None = None
        self.batch: np.ndarray | None = None

    def reset_moments(self) -> None:
        """Zero the Adam state (the reference resets it every outer iteration)."""
        self.first_moment.fill(0.0)
        self.second_moment.fill(0.0)

    def residual_for(self, n_rows: int) -> tuple[np.ndarray, np.ndarray]:
        """The (n_rows, d) residual + squared-residual buffers (reused)."""
        if self.residual is None or self.residual.shape[0] != n_rows:
            self.residual = np.empty((n_rows, self.d))
            self.residual_sq = np.empty((n_rows, self.d))
            self.scaled_t = np.empty((n_rows, self.d)).T
        return self.residual, self.residual_sq

    def batch_for(self, n_rows: int) -> np.ndarray:
        """The (n_rows, d) batch gather buffer for mini-batch iterations."""
        if self.batch is None or self.batch.shape[0] != n_rows:
            self.batch = np.empty((n_rows, self.d))
        return self.batch


# ---------------------------------------------------------------------------
# Numpy fallback: the same fused pipeline with out= calls over the workspace
# ---------------------------------------------------------------------------


def _np_bound_value_grad(weights: np.ndarray, workspace: _Workspace, k: int, alpha: float) -> float:
    """Buffered-numpy spectral bound value + gradient (into ``workspace.cgrad``).

    Mirrors :func:`repro.core.acyclicity._forward_dense` /
    :func:`_backward_dense` operation for operation, but runs over the
    preallocated ``workspace`` instead of allocating per-level matrices.
    """
    smats = workspace.smats
    balances = workspace.balances
    rsums = workspace.rsums
    csums = workspace.csums
    gradient = workspace.grad_s
    scratch = workspace.scratch
    mask = workspace.mask

    np.multiply(weights, weights, out=smats[0])
    for j in range(k + 1):
        smats[j].sum(axis=1, out=rsums[j])
        smats[j].sum(axis=0, out=csums[j])
        np.multiply(
            _safe_power(rsums[j], alpha),
            _safe_power(csums[j], 1.0 - alpha),
            out=balances[j],
        )
        if j < k:
            inverse_balance = _safe_divide(np.ones_like(balances[j]), balances[j])
            np.multiply(smats[j], inverse_balance[:, None], out=smats[j + 1])
            smats[j + 1] *= balances[j][None, :]
    bound = float(balances[k].sum())

    np.not_equal(weights, 0.0, out=mask)

    def _xy(level: int) -> tuple[np.ndarray, np.ndarray]:
        ratio_cr = _safe_divide(csums[level], rsums[level])
        ratio_rc = _safe_divide(rsums[level], csums[level])
        return (
            alpha * _safe_power(ratio_cr, 1.0 - alpha),
            (1.0 - alpha) * _safe_power(ratio_rc, alpha),
        )

    x_k, y_k = _xy(k)
    np.add(x_k[:, None], y_k[None, :], out=gradient)
    gradient *= mask

    for j in range(k, 0, -1):
        level = j - 1
        balance = balances[level]
        x_prev, y_prev = _xy(level)
        inverse_balance = _safe_divide(np.ones_like(balance), balance)
        inverse_balance_sq = _safe_divide(np.ones_like(balance), balance**2)

        np.multiply(gradient, smats[level], out=scratch)
        scratch *= balance[None, :]
        z = -scratch.sum(axis=1) * inverse_balance_sq
        np.multiply(gradient, inverse_balance[:, None], out=scratch)
        scratch *= smats[level]
        z += scratch.sum(axis=0)

        gradient *= inverse_balance[:, None]
        gradient *= balance[None, :]
        np.multiply(mask, (x_prev * z)[:, None], out=scratch)
        gradient += scratch
        np.multiply(mask, (y_prev * z)[None, :], out=scratch)
        gradient += scratch
        gradient *= mask

    np.multiply(gradient, weights, out=workspace.cgrad)
    workspace.cgrad *= 2.0
    return bound


def _np_fused_update(
    weights: np.ndarray,
    workspace: _Workspace,
    penalty_coefficient: float,
    l1_penalty: float,
    bias1: float,
    bias2: float,
    learning_rate: float,
    beta1: float,
    beta2: float,
    epsilon: float,
    threshold: float,
) -> float:
    """Buffered-numpy gradient combine + Adam step + threshold (in place).

    Arithmetic follows :class:`repro.core.optimizers.AdamOptimizer` exactly;
    only the storage strategy differs (moments and scratch live on the
    workspace).  Returns the pre-update ``Σ|W|``.
    """
    grad = workspace.loss_grad  # already holds the smooth data-fit gradient
    scratch = workspace.scratch
    scratch2 = workspace.scratch2
    m = workspace.first_moment
    v = workspace.second_moment

    np.abs(weights, out=scratch)
    abs_sum = float(scratch.sum())

    np.sign(weights, out=scratch)
    scratch *= l1_penalty
    grad += scratch
    np.multiply(workspace.cgrad, penalty_coefficient, out=scratch)
    grad += scratch
    np.fill_diagonal(grad, 0.0)

    m *= beta1
    np.multiply(grad, 1.0 - beta1, out=scratch)
    m += scratch
    v *= beta2
    np.multiply(grad, grad, out=scratch)
    scratch *= 1.0 - beta2
    v += scratch

    np.divide(v, bias2, out=scratch)
    np.sqrt(scratch, out=scratch)
    scratch += epsilon
    np.divide(m, bias1, out=scratch2)
    scratch2 *= learning_rate
    scratch2 /= scratch
    weights -= scratch2

    np.fill_diagonal(weights, 0.0)
    if threshold > 0.0:
        np.abs(weights, out=scratch)
        np.less(scratch, threshold, out=workspace.mask)
        weights[workspace.mask] = 0.0
    return abs_sum


# ---------------------------------------------------------------------------
# Config + solver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FastLEASTConfig(LEASTConfig):
    """:class:`~repro.core.least.LEASTConfig` plus the JIT selection knob.

    Attributes
    ----------
    jit:
        Which fused kernel set drives the inner loop: ``"auto"`` (numba when
        importable, numpy otherwise — the default), ``"numba"`` (require the
        JIT; raises when numba is missing), or ``"numpy"`` (force the
        buffered-numpy fallback, e.g. to measure the JIT's contribution).
    """

    jit: str = "auto"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.jit not in ("auto", "numba", "numpy"):
            raise ValidationError(
                f"jit must be 'auto', 'numba', or 'numpy', got {self.jit!r}"
            )


class FastLEAST(LEAST):
    """Dense LEAST with the fused inner loop (JIT or buffered numpy).

    Everything outside the inner loop — initialization, the augmented-
    Lagrangian schedule, warm starts, ``track_h``, history, outer-iteration
    hooks — is inherited from :class:`~repro.core.least.LEAST` unchanged, so
    the two solvers agree to floating-point tolerance on seeded problems.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graph import random_dag
    >>> from repro.sem import simulate_linear_sem
    >>> truth = random_dag("ER-2", 12, seed=0)
    >>> data = simulate_linear_sem(truth, 120, seed=1)
    >>> config = FastLEASTConfig(max_outer_iterations=3, max_inner_iterations=40)
    >>> result = FastLEAST(config).fit(data, seed=2)
    >>> result.weights.shape
    (12, 12)
    """

    def __init__(self, config: FastLEASTConfig | None = None):
        config = config or FastLEASTConfig()
        if not isinstance(config, FastLEASTConfig):
            # A plain LEASTConfig (e.g. handed over by the scheduler) is
            # upgraded field-for-field; jit stays at its "auto" default.
            config = FastLEASTConfig(
                **{
                    f.name: getattr(config, f.name)
                    for f in dataclass_fields(LEASTConfig)
                }
            )
        super().__init__(config)
        self.jit_backend = resolve_jit(config.jit)
        self._workspace: _Workspace | None = None

    # -- internals --------------------------------------------------------------

    def _workspace_for(self, d: int) -> _Workspace:
        """The preallocated buffer set for ``d``-node problems (reused)."""
        if self._workspace is None or self._workspace.d != d:
            self._workspace = _Workspace(d, self.config.k)
        return self._workspace

    def _inner(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        rho: float,
        eta: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, float, int]:
        """Fused inner procedure: identical math, preallocated buffers."""
        config = self.config
        d = weights.shape[0]
        workspace = self._workspace_for(d)
        workspace.reset_moments()
        weights = np.array(weights, dtype=float, copy=True, order="C")
        data = np.ascontiguousarray(data, dtype=float)

        use_numba = self.jit_backend == "numba"
        if use_numba:
            bound_kernel, update_kernel = _numba_kernels()

        n_samples = data.shape[0]
        batch_size = config.batch_size
        full_batch = (
            batch_size is None or batch_size <= 0 or batch_size >= n_samples
        )
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        learning_rate = config.learning_rate

        previous_objective = np.inf
        objective = np.inf
        constraint = self._bound.value(weights)

        steps = 0
        for steps in range(1, config.max_inner_iterations + 1):
            if full_batch:
                batch = data
            else:
                # Same RNG consumption as repro.core.losses.sample_batch.
                indices = rng.choice(n_samples, size=batch_size, replace=False)
                batch = workspace.batch_for(batch_size)
                np.take(data, indices, axis=0, out=batch)
            n_batch = max(batch.shape[0], 1)

            if use_numba:
                constraint = bound_kernel(
                    weights,
                    workspace.smats,
                    workspace.rsums,
                    workspace.csums,
                    workspace.balances,
                    workspace.grad_s,
                    workspace.cgrad,
                    config.k,
                    config.alpha,
                )
            else:
                constraint = _np_bound_value_grad(
                    weights, workspace, config.k, config.alpha
                )

            residual, residual_sq = workspace.residual_for(batch.shape[0])
            np.matmul(batch, weights, out=residual)
            residual -= batch
            np.multiply(residual, residual, out=residual_sq)
            smooth = float(residual_sq.sum()) / n_batch
            # The reference evaluates ``(2/n) * X.T @ R`` which (operator
            # precedence) scales X.T *before* the matmul; matching that order
            # through a contiguous buffer keeps the gradient bitwise equal.
            np.multiply(batch.T, 2.0 / n_batch, out=workspace.scaled_t)
            np.matmul(workspace.scaled_t, residual, out=workspace.loss_grad)

            penalty_coefficient = rho * constraint + eta
            bias1 = 1.0 - beta1**steps
            bias2 = 1.0 - beta2**steps
            if use_numba:
                abs_sum = update_kernel(
                    weights,
                    workspace.loss_grad,
                    workspace.cgrad,
                    penalty_coefficient,
                    config.l1_penalty,
                    workspace.first_moment,
                    workspace.second_moment,
                    bias1,
                    bias2,
                    learning_rate,
                    beta1,
                    beta2,
                    epsilon,
                    config.threshold,
                )
            else:
                abs_sum = _np_fused_update(
                    weights,
                    workspace,
                    penalty_coefficient,
                    config.l1_penalty,
                    bias1,
                    bias2,
                    learning_rate,
                    beta1,
                    beta2,
                    epsilon,
                    config.threshold,
                )

            loss_value = smooth + config.l1_penalty * abs_sum
            objective = loss_value + 0.5 * rho * constraint**2 + eta * constraint

            if np.isfinite(previous_objective):
                denominator = max(abs(previous_objective), 1e-12)
                if (
                    abs(previous_objective - objective) / denominator
                    < config.inner_convergence_tol
                ):
                    break
            previous_objective = objective

        constraint = self._bound.value(weights)
        return weights, constraint, float(objective), steps
