"""repro — reproduction of "Efficient and Scalable Structure Learning for
Bayesian Networks: Algorithms and Applications" (LEAST, ICDE 2021).

The package is organised in layers:

* :mod:`repro.core` — the LEAST algorithm (dense and sparse), the spectral
  acyclicity bound it is built on, and the NOTEARS baseline, unified behind
  the :class:`~repro.core.SolverBackend` protocol and the
  :func:`~repro.core.make_solver` factory;
* :mod:`repro.graph`, :mod:`repro.sem`, :mod:`repro.metrics` — the substrates:
  random DAG generation, linear-SEM data simulation, and structure-recovery
  metrics;
* :mod:`repro.bn` — a linear-Gaussian Bayesian-network model built from a
  learned structure (fitting, sampling, inference);
* :mod:`repro.datasets` — benchmark dataset generators (Sachs, synthetic gene
  regulatory networks, synthetic MovieLens-style ratings);
* :mod:`repro.monitoring` — the ticket-booking monitoring / root-cause
  analysis application of Section VI-A;
* :mod:`repro.recommend` — the explainable-recommendation case study of
  Section VI-C;
* :mod:`repro.serve` — the batch serving layer (Section VI's ~100k-tasks/day
  deployment in miniature): declarative :class:`~repro.serve.LearningJob`
  specs, a parallel :class:`~repro.serve.BatchRunner` with retry/timeout,
  content-addressed result caching, and warm-started windowed re-learning via
  :class:`~repro.serve.RelearnScheduler` (also exposed as the
  ``python -m repro.serve`` CLI);
* :mod:`repro.shard` — block-partitioned solving of one huge problem on top
  of the serving engine: correlation-skeleton planning
  (:class:`~repro.shard.ShardPlanner`), per-block streamed execution
  (:class:`~repro.shard.ShardExecutor`), and DAG-guaranteed stitching
  (:class:`~repro.shard.Stitcher`), also exposed as the
  ``repro-serve shard`` CLI subcommand;
* :mod:`repro.obs` — unified observability across all of the above: tracing
  spans (:class:`~repro.obs.Tracer`), a metrics registry
  (:class:`~repro.obs.MetricsRegistry`), and NDJSON event export, surfaced
  on the CLI as ``--trace-out`` / ``--metrics-out``.

Quickstart
----------
>>> from repro import LEAST, LEASTConfig, random_dag, simulate_linear_sem, evaluate_structure
>>> truth = random_dag("ER-2", 20, seed=0)
>>> data = simulate_linear_sem(truth, 400, noise_type="gaussian", seed=1)
>>> result = LEAST(LEASTConfig(l1_penalty=0.05)).fit(data, seed=2)
>>> metrics = evaluate_structure(result.weights, truth)

Batch serving
-------------
>>> from repro import BatchRunner, LearningJob
>>> jobs = [LearningJob(dataset="er2", seed=s, dataset_options={"n_nodes": 20})
...         for s in range(4)]
>>> report = BatchRunner(n_workers=2).run(jobs)
"""

from repro.core import (
    LEAST,
    LEASTConfig,
    LEASTResult,
    NOTEARS,
    NOTEARSConfig,
    SolveResult,
    SolverBackend,
    SparseLEAST,
    SparseLEASTConfig,
    SpectralAcyclicityBound,
    grid_search_threshold,
    make_solver,
    notears_constraint,
    solver_names,
    spectral_bound,
    threshold_to_dag,
    threshold_weights,
)
from repro.graph import is_dag, random_dag
from repro.obs import MetricsRegistry, Tracer
from repro.metrics import auc_roc, evaluate_structure, pearson_correlation
from repro.sem import simulate_linear_sem
from repro.serve import (
    BatchReport,
    BatchRunner,
    DiskCache,
    InMemoryCache,
    JobResult,
    LearningJob,
    RelearnScheduler,
)
from repro.shard import ShardExecutor, ShardPlanner, Stitcher, solve_sharded

__version__ = "1.1.0"

__all__ = [
    "LEAST",
    "LEASTConfig",
    "LEASTResult",
    "SparseLEAST",
    "SparseLEASTConfig",
    "NOTEARS",
    "NOTEARSConfig",
    "SolverBackend",
    "SolveResult",
    "make_solver",
    "solver_names",
    "SpectralAcyclicityBound",
    "spectral_bound",
    "notears_constraint",
    "grid_search_threshold",
    "threshold_weights",
    "threshold_to_dag",
    "random_dag",
    "is_dag",
    "simulate_linear_sem",
    "evaluate_structure",
    "auc_roc",
    "pearson_correlation",
    "LearningJob",
    "JobResult",
    "BatchRunner",
    "BatchReport",
    "InMemoryCache",
    "DiskCache",
    "RelearnScheduler",
    "ShardPlanner",
    "ShardExecutor",
    "Stitcher",
    "solve_sharded",
    "Tracer",
    "MetricsRegistry",
    "__version__",
]
