"""repro.serve — the batch structure-learning service layer.

The paper's headline deployment claim (Section VI) is LEAST running as a
production service executing ~100k structure-learning tasks per day.  This
package is that serving layer in miniature:

* :mod:`repro.serve.job` — declarative :class:`LearningJob` specs and the
  uniform :class:`JobResult` record, covering all three solvers;
* :mod:`repro.serve.pool` — :class:`WorkerPool`: the persistent pre-forked
  worker pool — workers started once, recycled only after preemption or
  ``max_jobs_per_worker``, with two-tier deadlines (cooperative soft stop at
  an outer-iteration boundary, then SIGKILL + worker suicide timers);
* :mod:`repro.serve.streaming` — :class:`StreamingRunner`: the execution
  engine on top of the pool — results yielded as they complete, plus the
  incremental :class:`StreamSession` submit/poll face;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`: spool-directory job
  intake — NDJSON submissions claimed atomically, per-tenant FIFO fairness,
  admission control, NDJSON results streamed back as jobs finish;
* :mod:`repro.serve.runner` — :class:`BatchRunner`: the batch-shaped facade
  over the engine, returning a :class:`BatchReport` with throughput, cache,
  and preemption telemetry;
* :mod:`repro.serve.cache` — content-addressed result caching (in-memory or
  on-disk) keyed by (data fingerprint, config hash, seed), so repeated jobs
  are near-free; both backends support bounded LRU operation;
* :mod:`repro.serve.warm_start` — vocabulary-aware re-use of a previous
  solution as the next solve's initialization;
* :mod:`repro.serve.scheduler` — :class:`RelearnScheduler`: the windowed
  warm-started re-learn loop that the monitoring pipeline runs on;
* :mod:`repro.serve.cli` — ``python -m repro.serve manifest.json`` /
  the ``repro-serve`` console script.

Quickstart
----------
>>> from repro.serve import BatchRunner, InMemoryCache, LearningJob
>>> jobs = [
...     LearningJob(dataset="er2", seed=s, dataset_options={"n_nodes": 20},
...                 config={"max_outer_iterations": 4})
...     for s in range(4)
... ]
>>> report = BatchRunner(n_workers=2, cache=InMemoryCache()).run(jobs)
>>> report.n_ok
4
"""

from repro.serve.cache import (
    DiskCache,
    InMemoryCache,
    ResultCache,
    fingerprint_array,
    fingerprint_config,
    job_fingerprint,
)
from repro.serve.job import (
    JobResult,
    LearningJob,
    execute_job,
    register_solver,
    solver_names,
    unregister_solver,
)


def __getattr__(name: str):
    """Serve ``SOLVER_NAMES`` live from the backend registry (never stale)."""
    if name == "SOLVER_NAMES":
        return solver_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.serve.daemon import ServeDaemon
from repro.serve.pool import PoolJob, SoftDeadlineExceeded, WorkerPool
from repro.serve.runner import BatchReport, BatchRunner
from repro.serve.scheduler import RelearnScheduler, WindowStats
from repro.serve.streaming import (
    PreemptedError,
    StreamingRunner,
    StreamSession,
    StreamTelemetry,
    WorkerCrashError,
    call_with_deadline,
)
from repro.serve.warm_start import (
    WarmStartState,
    align_weights,
    damp_weights,
    prepare_init,
)

__all__ = [
    "SOLVER_NAMES",
    "solver_names",
    "LearningJob",
    "JobResult",
    "execute_job",
    "register_solver",
    "unregister_solver",
    "BatchRunner",
    "BatchReport",
    "StreamingRunner",
    "StreamSession",
    "StreamTelemetry",
    "WorkerPool",
    "PoolJob",
    "SoftDeadlineExceeded",
    "ServeDaemon",
    "PreemptedError",
    "WorkerCrashError",
    "call_with_deadline",
    "ResultCache",
    "InMemoryCache",
    "DiskCache",
    "fingerprint_array",
    "fingerprint_config",
    "job_fingerprint",
    "WarmStartState",
    "align_weights",
    "damp_weights",
    "prepare_init",
    "RelearnScheduler",
    "WindowStats",
]
