"""Warm-start preparation for incremental re-learning.

The monitoring deployment of the paper re-learns a BN every 30 minutes over a
sliding window whose variables barely change between consecutive runs.
Starting each re-learn from the previous window's solution instead of a random
matrix lets the augmented-Lagrangian loop converge in far fewer inner steps.

Two wrinkles make this more than "pass the old W back in":

* consecutive windows generally do not share an identical variable set (a rare
  airline or agent may appear or disappear from the logs), so the old matrix
  must be re-indexed onto the new node vocabulary — :func:`align_weights`;
* the previous solution sits exactly on the old window's optimum, which can be
  a slightly cyclic saddle for the new data; shrinking it toward zero with a
  damping factor restores enough slack for the solver to move —
  :func:`damp_weights`.

:func:`prepare_init` composes the two and is what the
:class:`~repro.serve.scheduler.RelearnScheduler` calls between windows.

Representation is preserved end to end: a CSR previous solution is aligned
and damped **without ever materializing a dense ``d × d`` matrix**, so a
100k-node LEAST-SP window can warm-start the next one in ``O(nnz)`` memory.
Because the *next* window's solver may use the other representation (the
scheduler auto-escalates dense → sparse as vocabularies grow, and shrinking
vocabularies de-escalate), :func:`prepare_init` takes a ``representation``
argument that converts the finished init in either direction — CSR↔dense —
as its final step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.utils.validation import check_non_negative, check_unit_interval

__all__ = ["WarmStartState", "align_weights", "damp_weights", "prepare_init"]

#: Allowed values of the ``representation`` argument of :func:`prepare_init`.
REPRESENTATIONS: tuple[str, ...] = ("keep", "dense", "sparse")


def _as_dense(weights: np.ndarray | sp.spmatrix) -> np.ndarray:
    if sp.issparse(weights):
        return np.asarray(weights.todense(), dtype=float)
    return np.asarray(weights, dtype=float)


def align_weights(
    weights: np.ndarray | sp.spmatrix,
    source_names: Sequence[str],
    target_names: Sequence[str],
) -> np.ndarray | sp.csr_matrix:
    """Re-index ``weights`` from one node vocabulary onto another.

    Entries between nodes present in both vocabularies are copied; rows and
    columns of nodes that only exist in the target start at zero (they will be
    populated by the solver).  Edges of vanished nodes are dropped.

    Storage is preserved: dense in, dense out; sparse in, CSR out — the
    sparse path re-indexes the COO coordinates directly and never builds a
    dense ``d × d`` intermediate.
    """
    d_source = len(source_names)
    if len(set(source_names)) != d_source:
        raise ValidationError("source_names contains duplicates")
    target_index = {name: position for position, name in enumerate(target_names)}
    if len(target_index) != len(target_names):
        raise ValidationError("target_names contains duplicates")
    if not sp.issparse(weights):
        weights = np.asarray(weights, dtype=float)  # accept array-likes
    if weights.shape != (d_source, d_source):
        raise ValidationError(
            f"weights shape {weights.shape} does not match the "
            f"{d_source} source node names"
        )
    d_target = len(target_names)

    if sp.issparse(weights):
        # Old position -> new position (or -1 for vanished nodes), applied to
        # the COO coordinates: O(nnz) time and memory.
        mapping = np.full(d_source, -1, dtype=np.int64)
        for position, name in enumerate(source_names):
            new_position = target_index.get(name)
            if new_position is not None:
                mapping[position] = new_position
        coo = weights.tocoo()
        rows = mapping[coo.row]
        cols = mapping[coo.col]
        keep = (rows >= 0) & (cols >= 0)
        aligned = sp.csr_matrix(
            (coo.data[keep].astype(float), (rows[keep], cols[keep])),
            shape=(d_target, d_target),
        )
        aligned.sum_duplicates()
        return aligned

    dense = _as_dense(weights)
    shared_source = [
        position
        for position, name in enumerate(source_names)
        if name in target_index
    ]
    shared_target = [target_index[source_names[position]] for position in shared_source]
    aligned = np.zeros((d_target, d_target))
    if shared_source:
        aligned[np.ix_(shared_target, shared_target)] = dense[
            np.ix_(shared_source, shared_source)
        ]
    return aligned


def damp_weights(
    weights: np.ndarray | sp.spmatrix,
    damping: float = 1.0,
    threshold: float = 0.0,
) -> np.ndarray | sp.csr_matrix:
    """Scale a warm-start matrix toward zero and drop negligible entries.

    ``damping`` multiplies every entry (1.0 keeps the solution as-is, 0.0
    degenerates to a cold zero start); ``threshold`` then zeroes entries whose
    magnitude fell below it, keeping the init as sparse as the solver expects.
    Storage is preserved (sparse input is damped on its data vector only).
    """
    check_unit_interval(damping, "damping")
    check_non_negative(threshold, "threshold")
    if sp.issparse(weights):
        damped = weights.tocsr().astype(float).copy()
        damped.data *= damping
        if threshold > 0:
            damped.data[np.abs(damped.data) < threshold] = 0.0
        damped.setdiag(0.0)
        damped.eliminate_zeros()
        return damped
    damped = _as_dense(weights) * damping
    if threshold > 0:
        damped[np.abs(damped) < threshold] = 0.0
    np.fill_diagonal(damped, 0.0)
    return damped


@dataclass
class WarmStartState:
    """The previous solve carried between windows: weights + vocabulary."""

    weights: np.ndarray | sp.spmatrix
    node_names: list[str]

    @property
    def n_nodes(self) -> int:
        """Size of the carried vocabulary (== the weight matrix dimension)."""
        return len(self.node_names)


def prepare_init(
    state: WarmStartState | None,
    target_names: Sequence[str],
    damping: float = 0.9,
    threshold: float = 0.0,
    min_shared: int = 1,
    representation: str = "keep",
) -> np.ndarray | sp.csr_matrix | None:
    """Build the warm-start matrix for the next window, or None for cold start.

    Returns None when there is no previous state or when fewer than
    ``min_shared`` nodes survive the vocabulary change (a drastically different
    window is better served by a fresh random init).

    Parameters
    ----------
    representation:
        ``"keep"`` returns the init in the carried state's storage,
        ``"dense"`` / ``"sparse"`` convert as a final step — this is how a
        CSR stitched window seeds a dense re-learn and a dense window seeds a
        LEAST-SP re-learn.  The conversion to dense is the *only* place this
        function materializes ``d × d``, and it happens exactly when the
        consuming solver is dense (which materializes that matrix anyway).
    """
    if representation not in REPRESENTATIONS:
        raise ValidationError(
            f"representation must be one of {REPRESENTATIONS}, "
            f"got {representation!r}"
        )
    if state is None:
        return None
    shared = len(set(state.node_names) & set(target_names))
    if shared < max(min_shared, 1):
        return None
    aligned = align_weights(state.weights, state.node_names, target_names)
    damped = damp_weights(aligned, damping=damping, threshold=threshold)
    if representation == "dense" and sp.issparse(damped):
        return np.asarray(damped.todense(), dtype=float)
    if representation == "sparse" and not sp.issparse(damped):
        result = sp.csr_matrix(damped)
        result.eliminate_zeros()
        return result
    return damped
