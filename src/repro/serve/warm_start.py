"""Warm-start preparation for incremental re-learning.

The monitoring deployment of the paper re-learns a BN every 30 minutes over a
sliding window whose variables barely change between consecutive runs.
Starting each re-learn from the previous window's solution instead of a random
matrix lets the augmented-Lagrangian loop converge in far fewer inner steps.

Two wrinkles make this more than "pass the old W back in":

* consecutive windows generally do not share an identical variable set (a rare
  airline or agent may appear or disappear from the logs), so the old matrix
  must be re-indexed onto the new node vocabulary — :func:`align_weights`;
* the previous solution sits exactly on the old window's optimum, which can be
  a slightly cyclic saddle for the new data; shrinking it toward zero with a
  damping factor restores enough slack for the solver to move —
  :func:`damp_weights`.

:func:`prepare_init` composes the two and is what the
:class:`~repro.serve.scheduler.RelearnScheduler` calls between windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.utils.validation import check_non_negative, check_unit_interval

__all__ = ["WarmStartState", "align_weights", "damp_weights", "prepare_init"]


def _as_dense(weights: np.ndarray | sp.spmatrix) -> np.ndarray:
    if sp.issparse(weights):
        return np.asarray(weights.todense(), dtype=float)
    return np.asarray(weights, dtype=float)


def align_weights(
    weights: np.ndarray | sp.spmatrix,
    source_names: Sequence[str],
    target_names: Sequence[str],
) -> np.ndarray:
    """Re-index ``weights`` from one node vocabulary onto another.

    Entries between nodes present in both vocabularies are copied; rows and
    columns of nodes that only exist in the target start at zero (they will be
    populated by the solver).  Edges of vanished nodes are dropped.
    """
    dense = _as_dense(weights)
    d_source = len(source_names)
    if dense.shape != (d_source, d_source):
        raise ValidationError(
            f"weights shape {dense.shape} does not match the "
            f"{d_source} source node names"
        )
    if len(set(source_names)) != d_source:
        raise ValidationError("source_names contains duplicates")
    target_index = {name: position for position, name in enumerate(target_names)}
    if len(target_index) != len(target_names):
        raise ValidationError("target_names contains duplicates")

    shared_source = [
        position
        for position, name in enumerate(source_names)
        if name in target_index
    ]
    shared_target = [target_index[source_names[position]] for position in shared_source]
    aligned = np.zeros((len(target_names), len(target_names)))
    if shared_source:
        aligned[np.ix_(shared_target, shared_target)] = dense[
            np.ix_(shared_source, shared_source)
        ]
    return aligned


def damp_weights(
    weights: np.ndarray | sp.spmatrix,
    damping: float = 1.0,
    threshold: float = 0.0,
) -> np.ndarray:
    """Scale a warm-start matrix toward zero and drop negligible entries.

    ``damping`` multiplies every entry (1.0 keeps the solution as-is, 0.0
    degenerates to a cold zero start); ``threshold`` then zeroes entries whose
    magnitude fell below it, keeping the init as sparse as the solver expects.
    """
    check_unit_interval(damping, "damping")
    check_non_negative(threshold, "threshold")
    damped = _as_dense(weights) * damping
    if threshold > 0:
        damped[np.abs(damped) < threshold] = 0.0
    np.fill_diagonal(damped, 0.0)
    return damped


@dataclass
class WarmStartState:
    """The previous solve carried between windows: weights + vocabulary."""

    weights: np.ndarray | sp.spmatrix
    node_names: list[str]

    @property
    def n_nodes(self) -> int:
        """Size of the carried vocabulary (== the weight matrix dimension)."""
        return len(self.node_names)


def prepare_init(
    state: WarmStartState | None,
    target_names: Sequence[str],
    damping: float = 0.9,
    threshold: float = 0.0,
    min_shared: int = 1,
) -> np.ndarray | None:
    """Build the warm-start matrix for the next window, or None for cold start.

    Returns None when there is no previous state or when fewer than
    ``min_shared`` nodes survive the vocabulary change (a drastically different
    window is better served by a fresh random init).
    """
    if state is None:
        return None
    shared = len(set(state.node_names) & set(target_names))
    if shared < max(min_shared, 1):
        return None
    aligned = align_weights(state.weights, state.node_names, target_names)
    return damp_weights(aligned, damping=damping, threshold=threshold)
