"""Persistent pre-forked worker pool for the streaming serve engine.

Before this module existed, :class:`~repro.serve.streaming.StreamingRunner`
paid one disposable process per job: spawn, registry snapshot, numpy import,
solve, exit.  ``BENCH_serve.json`` measured the consequence — 16 jobs on 4
workers ran at 0.94× the *serial* rate.  :class:`WorkerPool` replaces that
with N long-lived workers started once, each pulling jobs over its own duplex
pipe, recycled only after a preemption kill or ``max_jobs_per_worker``
completed jobs.  The backend-registry snapshot is paid once per worker (and
refreshed per job only when :func:`repro.core.backend.registry_epoch` says
the registry changed since the worker was forked).

Preemption keeps the exact semantics the streaming tests pin:

* the parent SIGKILLs a worker still running past its job's hard deadline —
  and kills *only that worker*; its replacement is spawned lazily when there
  is work for it;
* each worker arms a per-job *suicide timer* (``SIGALRM`` at its default,
  process-terminating disposition) slightly past the parent's deadline, so a
  worker orphaned by a dead parent still kills itself;
* a worker found dead from its own ``SIGALRM`` counts as a preemption; any
  other unexpected death (segfault, external ``SIGKILL``, OOM killer) is a
  plain failure and is never requeued.

On top of the hard tier sits the *soft-deadline* tier, wired through the
backend protocol's ``deadline_hooks``: with ``soft_timeout`` set, the worker
injects a hook that raises :class:`SoftDeadlineExceeded` at the first outer-
iteration boundary past the soft deadline.  The solve stops cooperatively —
the worker survives, reports a ``"preempted"`` result immediately, and stays
in the pool — while ``SIGKILL`` at the hard ``timeout`` remains the
escalation for solvers that never reach a boundary.

Tracing (when a :class:`~repro.obs.Tracer` is set) adds the pool's own span
vocabulary: a root-level ``worker_spawn`` span per worker (launch → ready
handshake), root-level ``worker_idle`` spans for the gaps a worker spends
waiting between jobs, a ``job_dispatch`` span per handoff (pickling + pipe
write, parented on the job span), and a ``job_attempt`` span covering each
killed attempt so queue waits and attempts together tile the job span even
across requeues.  Pool health is exported as gauges/counters on the tracer's
metrics registry (``serve_pool_workers``, ``serve_pool_busy_workers``,
``serve_pool_pending_jobs``, ``serve_pool_spawns_total``,
``serve_pool_recycles_total``, ``serve_worker_idle_seconds``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

import repro.core.backend as backend_module
from repro.exceptions import SoftDeadlineExceeded, ValidationError
from repro.obs import NDJSONFileSink, ResourceSampler, Span, Tracer, activated, merge_spool
from repro.serve.job import JobResult, LearningJob, execute_job

__all__ = [
    "PREEMPT_POLICIES",
    "SoftDeadlineExceeded",
    "StreamTelemetry",
    "PoolJob",
    "WorkerPool",
]

#: Allowed values of the ``preempt_policy`` knob (pool and runner alike).
PREEMPT_POLICIES: tuple[str, ...] = ("fail", "requeue")


def _kill_grace() -> float:
    """Grace period between parent kill and worker suicide timer (seconds)."""
    return float(os.environ.get("REPRO_SERVE_KILL_GRACE", "0.5"))


def _poll_interval() -> float:
    """Upper bound on the parent's poll sleep (seconds)."""
    return float(os.environ.get("REPRO_SERVE_POLL_INTERVAL", "0.05"))


def _mp_context() -> mp.context.BaseContext:
    """The multiprocessing context honoring ``REPRO_SERVE_START_METHOD``."""
    method = os.environ.get("REPRO_SERVE_START_METHOD") or None
    return mp.get_context(method)


# SoftDeadlineExceeded lives in repro.exceptions (execute_job catches it
# mid-wave); it stays re-exported here because this module raises it and the
# historical import path is repro.serve.pool.SoftDeadlineExceeded.


# -- worker-side code ----------------------------------------------------------


def _arm_suicide_timer(deadline: float | None) -> None:
    """Arm the worker's own kill switch slightly past the parent's deadline.

    ``SIGALRM`` is deliberately left at its *default* disposition: the kernel
    terminates the process when the timer fires even if the interpreter is
    stuck inside a C extension and would never run a Python handler.  The
    parent's ``SIGKILL`` remains the primary enforcement; the suicide timer
    only matters when the parent itself died and can no longer clean up.
    """
    if deadline is None:
        return
    if not (hasattr(signal, "setitimer") and hasattr(signal, "SIGALRM")):
        return  # pragma: no cover - non-POSIX platforms
    signal.signal(signal.SIGALRM, signal.SIG_DFL)
    signal.setitimer(signal.ITIMER_REAL, deadline + _kill_grace())


def _disarm_suicide_timer() -> None:
    """Cancel the per-job suicide timer (a pool worker outlives its jobs)."""
    if not (hasattr(signal, "setitimer") and hasattr(signal, "SIGALRM")):
        return  # pragma: no cover - non-POSIX platforms
    signal.setitimer(signal.ITIMER_REAL, 0.0)


def _soft_deadline_hook(deadline_at: float, soft_timeout: float):
    """Build the per-outer-iteration check enforcing the soft deadline."""

    def _check() -> None:
        if time.monotonic() >= deadline_at:
            raise SoftDeadlineExceeded(
                f"soft deadline of {soft_timeout:.3f}s reached; "
                "stopped at an outer-iteration boundary"
            )

    return _check


def _execute_with_retry(
    job: LearningJob,
    data: np.ndarray | None,
    fingerprint: str | None,
    max_retries: int,
    base_attempts: int,
    soft_deadline_at: float | None = None,
    soft_timeout: float | None = None,
) -> JobResult:
    """Run the solver for one job, retrying failures within the same worker.

    Parameters
    ----------
    job, data, fingerprint:
        The job spec, its materialized sample matrix, and its cache key.
    max_retries:
        Additional solver attempts granted after the first failure.
    base_attempts:
        Attempts already consumed in the parent (dataset materialization).
    soft_deadline_at, soft_timeout:
        Monotonic instant of the soft deadline (and the configured seconds,
        for the error message).  A solve stopped by the hook returns a
        ``"preempted"`` result immediately — soft stops are final, never
        retried.

    Returns
    -------
    JobResult
        An ``"ok"`` result from the first successful attempt, a
        ``"preempted"`` result for a soft-deadline stop, or a ``"failed"``
        result carrying the last error once the budget is spent.

    Wave jobs (``job.wave`` set) are delegated to :func:`execute_job` in a
    single call: the retry budget applies *per wave member* inside it, so
    one bad block costs its own retries, not a re-solve of the whole wave,
    and a soft-deadline stop keeps the members that already finished.
    """
    last_error = "job was never attempted"
    attempts = base_attempts
    hooks = None
    if soft_deadline_at is not None:
        hooks = [_soft_deadline_hook(soft_deadline_at, soft_timeout or 0.0)]
    if job.wave is not None:
        try:
            result = execute_job(
                job,
                data=data,
                fingerprint=fingerprint,
                deadline_hooks=hooks,
                max_retries=max_retries,
            )
            result.attempts = base_attempts + 1
            return result
        except Exception as exc:  # noqa: BLE001 - failures become job status
            return JobResult(
                job_id=job.job_id or job.describe(),
                solver=job.solver,
                status="failed",
                attempts=base_attempts + 1,
                fingerprint=fingerprint,
                error=f"{type(exc).__name__}: {exc}",
            )
    for _ in range(max_retries + 1):
        attempts += 1
        try:
            result = execute_job(
                job, data=data, fingerprint=fingerprint, deadline_hooks=hooks
            )
            result.attempts = attempts
            return result
        except SoftDeadlineExceeded as exc:
            return JobResult(
                job_id=job.job_id or job.describe(),
                solver=job.solver,
                status="preempted",
                attempts=attempts,
                fingerprint=fingerprint,
                error=str(exc),
            )
        except Exception as exc:  # noqa: BLE001 - failures become job status
            last_error = f"{type(exc).__name__}: {exc}"
    return JobResult(
        job_id=job.job_id or job.describe(),
        solver=job.solver,
        status="failed",
        attempts=attempts,
        fingerprint=fingerprint,
        error=last_error,
    )


@dataclass
class _TraceSpec:
    """Tracing instructions shipped to a worker (picklable for spawn workers).

    The worker opens an :class:`~repro.obs.NDJSONFileSink` on ``spool_path``
    and parents its root ``worker`` span onto the parent-side job span, so
    the merged trace (:func:`repro.obs.merge_spool`) reads as one tree.
    """

    spool_path: str
    trace_id: str
    parent_span_id: str | None


def _run_one(payload: dict[str, Any]) -> JobResult:
    """Execute one dispatched job inside the worker (tracing-aware)."""
    job: LearningJob = payload["job"]
    soft_timeout = payload["soft_timeout"]
    soft_deadline_at = (
        time.monotonic() + soft_timeout if soft_timeout is not None else None
    )
    trace_spec: _TraceSpec | None = payload["trace"]
    if trace_spec is None:
        return _execute_with_retry(
            job,
            payload["data"],
            payload["fingerprint"],
            payload["max_retries"],
            payload["base_attempts"],
            soft_deadline_at=soft_deadline_at,
            soft_timeout=soft_timeout,
        )
    tracer = Tracer(NDJSONFileSink(trace_spec.spool_path), trace_id=trace_spec.trace_id)
    try:
        with activated(tracer):
            with tracer.span(
                "worker", parent=trace_spec.parent_span_id, pid=os.getpid()
            ):
                return _execute_with_retry(
                    job,
                    payload["data"],
                    payload["fingerprint"],
                    payload["max_retries"],
                    payload["base_attempts"],
                    soft_deadline_at=soft_deadline_at,
                    soft_timeout=soft_timeout,
                )
    finally:
        # Closed before the result is sent so the parent never merges a
        # half-written spool for a job it already counted finished.
        tracer.close()


def _pool_worker(conn, solver_registry: dict, worker_index: int) -> None:
    """Long-lived worker entry point: serve jobs from ``conn`` until stopped.

    Protocol (all messages are pickled tuples):

    * worker → parent: ``("ready", pid)`` once, after the registry snapshot
      is restored — the parent only dispatches to ready workers, so hard
      deadlines never charge interpreter boot time to a job;
    * parent → worker: ``("job", payload)`` with the job spec, data, retry
      budget, deadlines, optional registry refresh, and optional trace spec;
      or ``None`` asking the worker to exit (recycling / graceful shutdown);
    * worker → parent: ``("result", JobResult)`` per job.

    The per-job suicide timer is armed on receipt and disarmed after the
    solve, so an idle pool worker never kills itself; a worker whose parent
    died sees EOF on the pipe and exits.
    """
    backend_module.restore_registry(solver_registry)
    try:
        conn.send(("ready", os.getpid()))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died early
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        _, payload = message
        if payload.get("registry") is not None:
            backend_module.restore_registry(payload["registry"])
        _arm_suicide_timer(payload["deadline"])
        try:
            result = _run_one(payload)
        finally:
            _disarm_suicide_timer()
        try:
            conn.send(("result", result))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


# -- parent-side primitives ----------------------------------------------------


def _terminate(process: mp.process.BaseProcess) -> None:
    """SIGKILL ``process`` and reap it (best effort, never raises)."""
    try:
        process.kill()
    except Exception:  # pragma: no cover - process already gone
        pass
    process.join(timeout=5.0)


def _suicide_exit(exitcode: int | None) -> bool:
    """True when the worker died from its own ``SIGALRM`` suicide timer.

    The parent's own deadline kills never reach the exit-code classifiers —
    the parent records them directly at the moment it sends the ``SIGKILL``.
    A ``-SIGKILL`` exit observed *here* therefore came from outside the
    engine (e.g. the kernel OOM killer) and is a crash, not a preemption;
    only the ``SIGALRM`` the worker armed itself counts as a deadline death.
    """
    if exitcode is None:
        return False
    return hasattr(signal, "SIGALRM") and exitcode == -int(signal.SIGALRM)


@dataclass
class StreamTelemetry:
    """Execution telemetry of one streaming pass (runner + pool combined).

    Attributes
    ----------
    time_to_first_result:
        Seconds from stream start to the first yielded result (``None`` until
        one arrives).
    total_seconds:
        Wall-clock duration of the whole stream.
    n_yielded:
        Results yielded so far (all statuses).
    n_killed:
        Workers the parent SIGKILLed at their hard deadline.
    n_suicide_exits:
        Workers found dead from their own ``SIGALRM`` suicide timer.
    n_soft_preempted:
        Jobs stopped cooperatively by the soft-deadline hook (the worker
        survived).
    n_requeued:
        Preempted jobs granted a fresh attempt under the ``"requeue"`` policy.
    n_recycled:
        Workers retired after ``max_jobs_per_worker`` completed jobs.
    n_workers_spawned:
        Worker processes started over the lifetime of the pass.
    killed_pids:
        Process ids of the killed workers (all reaped — useful for asserting
        that no orphans survive).
    worker_pids:
        Process ids of every worker ever spawned, recycled ones included.
    """

    time_to_first_result: float | None = None
    total_seconds: float = 0.0
    n_yielded: int = 0
    n_killed: int = 0
    n_suicide_exits: int = 0
    n_soft_preempted: int = 0
    n_requeued: int = 0
    n_recycled: int = 0
    n_workers_spawned: int = 0
    killed_pids: list[int] = field(default_factory=list)
    worker_pids: list[int] = field(default_factory=list)

    def preemption_summary(self) -> dict[str, float]:
        """JSON-able preemption counters (the report's ``preemption`` block)."""
        return {
            "n_killed": float(self.n_killed),
            "n_suicide_exits": float(self.n_suicide_exits),
            "n_soft_preempted": float(self.n_soft_preempted),
            "n_requeued": float(self.n_requeued),
        }


@dataclass
class PoolJob:
    """One unit of work moving through the pool.

    Attributes
    ----------
    job:
        The job spec (its ``data`` attribute should be stripped when the
        matrix travels separately in :attr:`data`).
    tag:
        Opaque caller context returned with the result — the runner stores
        the manifest index here, the daemon its submission record.
    data:
        Materialized sample matrix (``None`` lets the worker resolve it).
    fingerprint:
        Content-addressed cache key, stamped onto the result.
    base_attempts:
        Attempts already consumed in the parent (dataset materialization).
    preempt_attempts:
        Hard-preemption attempts consumed so far (requeue accounting).
    enqueued_at:
        Monotonic instant the job entered the queue — the start of its
        ``queue_wait`` span.  Reset at the moment of a requeue.
    span:
        Parent-side ``job`` lifecycle span (``None`` when untraced).
    """

    job: LearningJob
    tag: Any = None
    data: np.ndarray | None = None
    fingerprint: str | None = None
    base_attempts: int = 0
    preempt_attempts: int = 0
    enqueued_at: float = 0.0
    span: Span | None = None


@dataclass
class _Worker:
    """Parent-side state of one live pool worker."""

    index: int
    process: mp.process.BaseProcess
    conn: Any
    launch_at: float
    registry_epoch: int
    ready: bool = False
    idle_since: float | None = None
    jobs_done: int = 0
    current: PoolJob | None = None
    deadline_at: float | None = None
    dispatched_at: float = 0.0
    spool_path: str | None = None


class WorkerPool:
    """N persistent workers executing :class:`PoolJob` items from a queue.

    The pool is the process-management half of the streaming engine: it owns
    worker lifecycle (lazy spawn up to ``n_workers``, ready handshake,
    recycling, replacement after kills), deadline enforcement, and the
    preemption policy.  Materialization, caching, and result finalization
    stay with the caller (:class:`~repro.serve.streaming.StreamSession`).

    Parameters
    ----------
    n_workers:
        Maximum number of concurrently live worker processes.
    timeout:
        Hard per-job deadline in seconds, measured from dispatch to a
        *ready* worker (interpreter boot is never charged to a job).
        ``None`` disables hard preemption.
    soft_timeout:
        Cooperative deadline in seconds: past it, the solve stops at the
        next outer-iteration boundary and the job is reported
        ``"preempted"`` without killing the worker.  Must not exceed
        ``timeout`` when both are set.
    max_retries:
        Additional in-worker attempts for failing solver runs.
    preempt_policy, preempt_retries:
        ``"fail"`` reports a hard-killed job immediately; ``"requeue"``
        grants up to ``preempt_retries`` fresh attempts.  Soft-deadline
        stops are final under either policy.
    max_jobs_per_worker:
        Completed jobs after which a worker is retired and replaced
        (``None`` disables recycling; ``1`` reproduces the old
        disposable-process-per-job engine, which is exactly how the
        throughput benchmark measures the pool's amortization win).
    tracer:
        Optional :class:`~repro.obs.Tracer` for pool spans and gauges.
    sampler:
        Optional running :class:`~repro.obs.ResourceSampler`; worker pids
        are tracked from spawn to retirement and each finished job span is
        stamped with the worker's peak RSS so far.
    telemetry:
        :class:`StreamTelemetry` instance to mutate (a fresh one by
        default) — the runner shares its own so kill/requeue counters land
        in one place.
    spool_dir:
        Directory for per-job worker span spools (required for worker-side
        tracing; the caller owns its lifetime).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        timeout: float | None = None,
        soft_timeout: float | None = None,
        max_retries: int = 0,
        preempt_policy: str = "fail",
        preempt_retries: int = 1,
        max_jobs_per_worker: int | None = None,
        tracer: Tracer | None = None,
        sampler: ResourceSampler | None = None,
        telemetry: StreamTelemetry | None = None,
        spool_dir: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if timeout is not None and timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        if soft_timeout is not None and soft_timeout <= 0:
            raise ValidationError(
                f"soft_timeout must be positive, got {soft_timeout}"
            )
        if (
            timeout is not None
            and soft_timeout is not None
            and soft_timeout > timeout
        ):
            raise ValidationError(
                f"soft_timeout ({soft_timeout}) must not exceed the hard "
                f"timeout ({timeout})"
            )
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if preempt_policy not in PREEMPT_POLICIES:
            raise ValidationError(
                f"preempt_policy must be one of {PREEMPT_POLICIES}, "
                f"got {preempt_policy!r}"
            )
        if preempt_retries < 0:
            raise ValidationError(
                f"preempt_retries must be >= 0, got {preempt_retries}"
            )
        if max_jobs_per_worker is not None and max_jobs_per_worker < 1:
            raise ValidationError(
                f"max_jobs_per_worker must be >= 1, got {max_jobs_per_worker}"
            )
        self.n_workers = int(n_workers)
        self.timeout = timeout
        self.soft_timeout = soft_timeout
        self.max_retries = int(max_retries)
        self.preempt_policy = preempt_policy
        self.preempt_retries = int(preempt_retries)
        self.max_jobs_per_worker = (
            int(max_jobs_per_worker) if max_jobs_per_worker is not None else None
        )
        self.tracer = tracer
        self.sampler = sampler
        self.telemetry = telemetry if telemetry is not None else StreamTelemetry()
        self.spool_dir = spool_dir
        self._pending: deque[PoolJob] = deque()
        self._workers: list[_Worker] = []
        self._next_worker_index = 0
        self._dispatch_seq = 0
        self._closed = False

    # -- public API ------------------------------------------------------------

    @property
    def n_pending(self) -> int:
        """Jobs queued but not yet handed to a worker."""
        return len(self._pending)

    @property
    def n_active(self) -> int:
        """Jobs currently executing on a worker."""
        return sum(1 for worker in self._workers if worker.current is not None)

    @property
    def in_flight(self) -> int:
        """Jobs submitted and not yet completed (queued + executing)."""
        return self.n_pending + self.n_active

    def live_pids(self) -> list[int]:
        """Pids of the currently live worker processes."""
        return [
            worker.process.pid
            for worker in self._workers
            if worker.process.pid is not None
        ]

    def submit(self, item: PoolJob) -> None:
        """Queue one job; it is dispatched as soon as a ready worker is idle."""
        if self._closed:
            raise ValidationError("cannot submit to a closed WorkerPool")
        if not item.enqueued_at:
            item.enqueued_at = time.monotonic()
        self._pending.append(item)
        self._dispatch()
        self._update_gauges()

    def poll(self, timeout: float | None = None) -> list[tuple[PoolJob, JobResult]]:
        """Advance the pool and return every job that completed.

        Blocks at most ``timeout`` seconds (default: the poll-interval knob,
        further bounded by the nearest hard deadline) waiting for worker
        events, then sweeps all workers for results, deaths, and blown
        deadlines, requeues preempted jobs under the ``"requeue"`` policy,
        and dispatches queued work onto idle workers.

        Returns
        -------
        list of (PoolJob, JobResult)
            Completed items in detection order (possibly empty).  Requeued
            preemptions do not appear until their final outcome.
        """
        self._dispatch()
        completed: list[tuple[PoolJob, JobResult]] = []
        if not self._workers:
            return completed
        self._wait(timeout)
        now = time.monotonic()
        for worker in list(self._workers):
            self._poll_worker(worker, now, completed)
        self._dispatch()
        self._update_gauges()
        return completed

    def close(self) -> None:
        """Stop every worker: idle ones gracefully, busy ones by SIGKILL.

        Cleanup kills are *not* deadline preemptions and stay out of the
        kill telemetry — abandoning a stream mid-way must not fabricate
        preemption counts.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for worker in list(self._workers):
            if worker.current is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():  # pragma: no cover - defensive
                    _terminate(worker.process)
            else:
                _terminate(worker.process)
            self._forget_worker(worker)
        self._pending.clear()
        self._update_gauges()

    # -- worker lifecycle ------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        """Start one worker process and begin its ready handshake."""
        context = _mp_context()
        parent_conn, child_conn = context.Pipe(duplex=True)
        index = self._next_worker_index
        self._next_worker_index += 1
        epoch = backend_module.registry_epoch()
        process = context.Process(
            target=_pool_worker,
            args=(child_conn, backend_module.registry_snapshot(), index),
            daemon=True,
        )
        launch_at = time.monotonic()
        process.start()
        child_conn.close()
        worker = _Worker(
            index=index,
            process=process,
            conn=parent_conn,
            launch_at=launch_at,
            registry_epoch=epoch,
        )
        self._workers.append(worker)
        self.telemetry.n_workers_spawned += 1
        if process.pid is not None:
            self.telemetry.worker_pids.append(process.pid)
            if self.sampler is not None:
                self.sampler.track(process.pid, role="worker")
        if self.tracer is not None:
            self.tracer.metrics.counter("serve_pool_spawns_total").inc()
        return worker

    def _ensure_workers(self) -> None:
        """Lazily keep just enough workers alive for the queued work."""
        wanted = min(self.n_workers, self.n_active + len(self._pending))
        while len(self._workers) < wanted:
            self._spawn_worker()

    def _forget_worker(self, worker: _Worker) -> None:
        """Drop a retired/dead worker from the pool's books."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.sampler is not None and worker.process.pid is not None:
            self.sampler.untrack(worker.process.pid)
        if worker in self._workers:
            self._workers.remove(worker)

    def _recycle_worker(self, worker: _Worker) -> None:
        """Gracefully retire a worker that reached ``max_jobs_per_worker``."""
        try:
            worker.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - defensive
            _terminate(worker.process)
        self._forget_worker(worker)
        self.telemetry.n_recycled += 1
        if self.tracer is not None:
            self.tracer.metrics.counter("serve_pool_recycles_total").inc()

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self) -> None:
        """Hand queued jobs to ready idle workers (FIFO)."""
        if not self._pending:
            return
        self._ensure_workers()
        for worker in list(self._workers):
            if not self._pending:
                break
            if not worker.ready or worker.current is not None:
                continue
            if worker.process.exitcode is not None:
                # Died while idle (e.g. external kill); replace lazily.
                worker.process.join(timeout=5.0)
                self._forget_worker(worker)
                self._ensure_workers()
                continue
            item = self._pending.popleft()
            if not self._send_job(worker, item):
                self._pending.appendleft(item)
                self._ensure_workers()

    def _send_job(self, worker: _Worker, item: PoolJob) -> bool:
        """Ship one job to one worker; False if the worker turned out dead."""
        now = time.monotonic()
        registry = None
        current_epoch = backend_module.registry_epoch()
        if current_epoch != worker.registry_epoch:
            registry = backend_module.registry_snapshot()
            worker.registry_epoch = current_epoch
        trace_spec = None
        if self.tracer is not None and self.spool_dir is not None:
            self._dispatch_seq += 1
            spool_path = os.path.join(
                self.spool_dir, f"dispatch-{self._dispatch_seq:05d}.ndjson"
            )
            trace_spec = _TraceSpec(
                spool_path=spool_path,
                trace_id=self.tracer.trace_id,
                parent_span_id=item.span.span_id if item.span is not None else None,
            )
        payload = {
            "job": item.job,
            "data": item.data,
            "fingerprint": item.fingerprint,
            "max_retries": self.max_retries,
            "base_attempts": item.base_attempts,
            "deadline": self.timeout,
            "soft_timeout": self.soft_timeout,
            "registry": registry,
            "trace": trace_spec,
        }
        try:
            worker.conn.send(("job", payload))
        except (BrokenPipeError, OSError):
            worker.process.join(timeout=5.0)
            self._forget_worker(worker)
            return False
        sent_at = time.monotonic()
        if self.tracer is not None:
            # Requeued attempts wait inside the pool, so their queue_wait is
            # only known here; first attempts record it at submit time in the
            # session (before materialization), matching the old engine.
            if item.preempt_attempts > 0:
                waited = max(now - item.enqueued_at, 0.0)
                self.tracer.record_span(
                    "queue_wait",
                    start=item.enqueued_at,
                    duration=waited,
                    parent=item.span,
                    attempt=item.preempt_attempts,
                )
                self.tracer.metrics.histogram("serve_queue_wait_seconds").observe(
                    waited
                )
            if worker.idle_since is not None:
                idle = max(now - worker.idle_since, 0.0)
                self.tracer.record_span(
                    "worker_idle",
                    start=worker.idle_since,
                    duration=idle,
                    parent=None,
                    worker=worker.index,
                    pid=worker.process.pid,
                )
                self.tracer.metrics.histogram("serve_worker_idle_seconds").observe(
                    idle
                )
            self.tracer.record_span(
                "job_dispatch",
                start=now,
                duration=max(sent_at - now, 0.0),
                parent=item.span,
                worker=worker.index,
                attempt=item.preempt_attempts,
            )
        worker.current = item
        worker.dispatched_at = sent_at
        worker.idle_since = None
        worker.deadline_at = (
            sent_at + self.timeout if self.timeout is not None else None
        )
        worker.spool_path = trace_spec.spool_path if trace_spec is not None else None
        return True

    # -- polling ---------------------------------------------------------------

    def _wait(self, timeout: float | None) -> None:
        """Block until a worker has news, a deadline passes, or a poll tick."""
        from multiprocessing.connection import wait as connection_wait

        now = time.monotonic()
        bound = _poll_interval() if timeout is None else timeout
        for worker in self._workers:
            if worker.deadline_at is not None:
                bound = min(bound, max(worker.deadline_at - now, 0.0))
        handles = [worker.conn for worker in self._workers]
        handles.extend(worker.process.sentinel for worker in self._workers)
        connection_wait(handles, timeout=bound)

    def _poll_worker(
        self,
        worker: _Worker,
        now: float,
        completed: list[tuple[PoolJob, JobResult]],
    ) -> None:
        """Check one worker for a message, a death, or a blown deadline."""
        # Sample liveness BEFORE draining the pipe: a worker that sends its
        # result and exits between the two steps is then caught by the drain
        # (the message is fully buffered before exit), never misclassified as
        # a crash with its completed result discarded.
        exited = worker.process.exitcode is not None
        if worker.conn.poll(0):
            try:
                kind, payload = worker.conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                self._handle_dead_worker(worker, completed, mid_send=True)
                return
            if kind == "ready":
                worker.ready = True
                worker.idle_since = time.monotonic()
                if self.tracer is not None:
                    self.tracer.record_span(
                        "worker_spawn",
                        start=worker.launch_at,
                        duration=max(worker.idle_since - worker.launch_at, 0.0),
                        parent=None,
                        worker=worker.index,
                        pid=worker.process.pid,
                    )
                return
            item = worker.current
            result: JobResult = payload
            worker.current = None
            worker.deadline_at = None
            worker.jobs_done += 1
            worker.idle_since = time.monotonic()
            if item is None:  # pragma: no cover - protocol violation
                return
            self._merge_job_trace(worker, item)
            if result.status == "preempted":
                self.telemetry.n_soft_preempted += 1
                if self.tracer is not None:
                    self.tracer.metrics.counter(
                        "serve_preemptions_total", kind="soft"
                    ).inc()
            # Attempts killed on earlier requeued workers are invisible to
            # this worker; fold them in so success and final-preemption paths
            # account alike.
            result.attempts += item.preempt_attempts
            completed.append((item, result))
            if exited or worker.process.exitcode is not None:
                # Sent its result, then died: replace it lazily.
                worker.process.join(timeout=5.0)
                self._forget_worker(worker)
            elif (
                self.max_jobs_per_worker is not None
                and worker.jobs_done >= self.max_jobs_per_worker
            ):
                self._recycle_worker(worker)
            return
        if exited:
            worker.process.join(timeout=5.0)
            self._handle_dead_worker(worker, completed, mid_send=False)
            return
        if (
            worker.current is not None
            and worker.deadline_at is not None
            and now >= worker.deadline_at
        ):
            self._kill_on_deadline(worker, completed)

    def _kill_on_deadline(
        self, worker: _Worker, completed: list[tuple[PoolJob, JobResult]]
    ) -> None:
        """SIGKILL exactly this worker at its job's hard deadline."""
        item = worker.current
        pid = worker.process.pid
        _terminate(worker.process)
        self.telemetry.n_killed += 1
        if pid is not None:
            self.telemetry.killed_pids.append(pid)
        if self.tracer is not None:
            self.tracer.metrics.counter(
                "serve_preemptions_total", kind="parent_kill"
            ).inc()
            if item is not None and item.span is not None:
                self.tracer.record_span(
                    "job_attempt",
                    start=worker.dispatched_at,
                    duration=max(time.monotonic() - worker.dispatched_at, 0.0),
                    parent=item.span,
                    status="preempted",
                    attempt=item.preempt_attempts,
                    pid=pid,
                )
        self._merge_job_trace(worker, item)
        self._forget_worker(worker)
        assert item is not None
        self._apply_preemption(
            item,
            f"job exceeded the {self.timeout:.3f}s deadline and was killed",
            completed,
        )

    def _handle_dead_worker(
        self,
        worker: _Worker,
        completed: list[tuple[PoolJob, JobResult]],
        mid_send: bool,
    ) -> None:
        """Classify a worker that died without delivering a result."""
        worker.process.join(timeout=5.0)
        item = worker.current
        exitcode = worker.process.exitcode
        if item is not None:
            self._merge_job_trace(worker, item)
        self._forget_worker(worker)
        if item is None:
            return  # died while idle; replaced lazily when work needs it
        # Parent deadline kills are recorded at the kill site, so only the
        # worker's own suicide timer reaches this classifier as a preemption;
        # an external SIGKILL (e.g. the kernel OOM killer) is a plain failure
        # — requeueing it would just repeat the damage.
        if self.timeout is not None and _suicide_exit(exitcode):
            self.telemetry.n_suicide_exits += 1
            if self.tracer is not None:
                self.tracer.metrics.counter(
                    "serve_preemptions_total", kind="suicide"
                ).inc()
            self._apply_preemption(
                item,
                f"worker killed itself at the {self.timeout:.3f}s deadline "
                f"(exit code {exitcode})",
                completed,
            )
            return
        detail = "while sending its result " if mid_send else ""
        completed.append(
            (
                item,
                JobResult(
                    job_id=item.job.job_id,
                    solver=item.job.solver,
                    status="failed",
                    attempts=item.base_attempts + 1,
                    fingerprint=item.fingerprint,
                    error=f"worker crashed {detail}(exit code {exitcode})",
                ),
            )
        )

    def _apply_preemption(
        self,
        item: PoolJob,
        reason: str,
        completed: list[tuple[PoolJob, JobResult]],
    ) -> None:
        """Apply the preemption policy: requeue the job or fail it for good."""
        item.preempt_attempts += 1
        if (
            self.preempt_policy == "requeue"
            and item.preempt_attempts <= self.preempt_retries
        ):
            self.telemetry.n_requeued += 1
            if self.tracer is not None:
                self.tracer.metrics.counter("serve_requeues_total").inc()
            # Reset the wait clock *here*, at the moment of the requeue — the
            # old engine set it only after sweeping the remaining workers,
            # leaving a gap the next attempt's queue_wait span never covered.
            item.enqueued_at = time.monotonic()
            self._pending.append(item)
            return
        completed.append(
            (
                item,
                JobResult(
                    job_id=item.job.job_id,
                    solver=item.job.solver,
                    status="preempted",
                    attempts=item.base_attempts + item.preempt_attempts,
                    fingerprint=item.fingerprint,
                    error=reason,
                ),
            )
        )

    # -- tracing helpers -------------------------------------------------------

    def _merge_job_trace(self, worker: _Worker, item: PoolJob | None) -> None:
        """Fold the worker's per-job span spool into the parent trace.

        Workers killed before flushing anything simply contribute no spans;
        partially flushed spools have their parentless spans adopted by the
        job span.  When resource sampling is on, the job span is stamped with
        the worker's peak RSS so far (cumulative over the worker's life —
        a pool worker's memory floor is shared across its jobs).
        """
        if (
            self.sampler is not None
            and item is not None
            and item.span is not None
            and worker.process.pid is not None
        ):
            peak = self.sampler.peak_rss_bytes(worker.process.pid)
            if peak > 0:
                item.span.set_attributes(worker_peak_rss_bytes=peak)
        if self.tracer is None or worker.spool_path is None:
            return
        adopt = item.span if item is not None else None
        merge_spool(self.tracer, worker.spool_path, adopt_parent=adopt)
        try:
            os.unlink(worker.spool_path)
        except OSError:  # pragma: no cover - already gone
            pass
        worker.spool_path = None

    def _update_gauges(self) -> None:
        """Refresh the pool-health gauges on the tracer's metrics registry."""
        if self.tracer is None:
            return
        metrics = self.tracer.metrics
        metrics.gauge("serve_pool_workers").set(len(self._workers))
        metrics.gauge("serve_pool_busy_workers").set(self.n_active)
        metrics.gauge("serve_pool_pending_jobs").set(len(self._pending))
