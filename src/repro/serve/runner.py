"""Batch execution of learning jobs: serial or process-parallel, with retry,
per-job timeout, caching, and throughput telemetry.

This is the repo's analog of the paper's production scheduler (Section VI):
a list of :class:`~repro.serve.job.LearningJob` specs goes in, a
:class:`BatchReport` with per-job results and aggregate throughput comes out.

Execution pipeline per job:

1. the sample matrix is materialized in the parent (dataset builders are
   retried up to ``max_retries`` times);
2. when a cache is attached, the job's content fingerprint is looked up and a
   hit is returned without touching a solver;
3. misses are executed — inline for ``n_workers=1``, on a
   ``ProcessPoolExecutor`` otherwise — with solver failures retried up to the
   same ``max_retries`` budget;
4. successful results are written back to the cache.

Timeout semantics: the deadline is enforced cooperatively.  In parallel mode
the parent stops waiting for a job ``timeout`` seconds after it begins
collecting that job's future (the worker is abandoned, never less than the
full budget).  In serial mode the job runs to completion and is re-labelled
``timeout`` when it overran the deadline.  Hard preemption of a running solver
would require worker suicide timers; the cooperative version keeps results
deterministic and portable.
"""

from __future__ import annotations

import copy
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

import repro.serve.job as job_module
from repro.exceptions import ValidationError
from repro.serve.cache import ResultCache, job_fingerprint
from repro.serve.job import JobResult, LearningJob, execute_job
from repro.utils.timer import Timer
from repro.utils.validation import check_positive

__all__ = ["BatchReport", "BatchRunner"]


def _initialize_worker(solver_registry: dict) -> None:
    """Replicate the parent's solver registrations in a pool worker.

    Under the ``fork`` start method workers inherit the registry anyway, but
    ``spawn``/``forkserver`` workers import :mod:`repro.serve.job` fresh and
    would otherwise not know about solvers added via ``register_solver``.
    """
    job_module._SOLVERS.update(solver_registry)


def _execute_with_retry(
    job: LearningJob,
    data: np.ndarray,
    fingerprint: str | None,
    max_retries: int,
    base_attempts: int,
) -> JobResult:
    """Top-level (picklable) worker: run the solver, retrying on failure."""
    last_error = "job was never attempted"
    attempts = base_attempts
    for _ in range(max_retries + 1):
        attempts += 1
        try:
            result = execute_job(job, data=data, fingerprint=fingerprint)
            result.attempts = attempts
            return result
        except Exception as exc:  # noqa: BLE001 - failures become job status
            last_error = f"{type(exc).__name__}: {exc}"
    return JobResult(
        job_id=job.job_id or job.describe(),
        solver=job.solver,
        status="failed",
        attempts=attempts,
        fingerprint=fingerprint,
        error=last_error,
    )


@dataclass
class BatchReport:
    """Results of one :meth:`BatchRunner.run` call plus aggregate telemetry."""

    results: list[JobResult]
    total_seconds: float
    n_workers: int
    solver_seconds_saved: float = 0.0
    cache_stats: dict[str, float] = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len(self.results)

    @property
    def n_ok(self) -> int:
        return sum(1 for result in self.results if result.status == "ok")

    @property
    def n_failed(self) -> int:
        return sum(1 for result in self.results if result.status == "failed")

    @property
    def n_timeout(self) -> int:
        return sum(1 for result in self.results if result.status == "timeout")

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for result in self.results if result.cache_hit)

    @property
    def jobs_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.n_jobs / self.total_seconds

    @property
    def solver_seconds(self) -> float:
        """Sum of per-job solver time (CPU-side work actually executed)."""
        return sum(result.elapsed_seconds for result in self.results)

    def summary(self) -> dict[str, Any]:
        """JSON-able aggregate view (the CLI report's ``summary`` block)."""
        return {
            "n_jobs": self.n_jobs,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "n_timeout": self.n_timeout,
            "n_cache_hits": self.n_cache_hits,
            "n_workers": self.n_workers,
            "total_seconds": self.total_seconds,
            "jobs_per_second": self.jobs_per_second,
            "solver_seconds": self.solver_seconds,
            "solver_seconds_saved": self.solver_seconds_saved,
            "cache_stats": dict(self.cache_stats),
        }


class BatchRunner:
    """Execute a list of jobs serially or across a process pool.

    Parameters
    ----------
    n_workers:
        1 runs jobs inline; >1 fans them out over a ``ProcessPoolExecutor``.
    cache:
        Optional :class:`~repro.serve.cache.ResultCache`; hits skip solver
        execution entirely and successful misses are written back.
    timeout:
        Cooperative per-job deadline in seconds (see module docstring).
    max_retries:
        Additional attempts granted to a failing dataset build or solver run.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        max_retries: int = 0,
    ) -> None:
        check_positive(n_workers, "n_workers")
        if timeout is not None:
            check_positive(timeout, "timeout")
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        self.n_workers = int(n_workers)
        self.cache = cache
        self.timeout = timeout
        self.max_retries = int(max_retries)

    # -- public API ------------------------------------------------------------

    def run(self, jobs: Sequence[LearningJob]) -> BatchReport:
        """Execute ``jobs`` and return a :class:`BatchReport`."""
        jobs = list(jobs)
        for index, job in enumerate(jobs):
            if job.job_id is None:
                job.job_id = f"job-{index:03d}"

        timer = Timer()
        with timer:
            slots: list[JobResult | None] = [None] * len(jobs)
            pending: list[tuple[int, LearningJob, np.ndarray, str | None, int]] = []
            seconds_saved = 0.0

            for index, job in enumerate(jobs):
                data, error, used_attempts = self._materialize(job)
                if data is None:
                    slots[index] = JobResult(
                        job_id=job.job_id,
                        solver=job.solver,
                        status="failed",
                        attempts=used_attempts,
                        error=error,
                    )
                    continue
                fingerprint = None
                if self.cache is not None:
                    fingerprint = job_fingerprint(job, data)
                    cached = self.cache.get(fingerprint)
                    if cached is not None and cached.status == "ok":
                        seconds_saved += cached.elapsed_seconds
                        slots[index] = cached.as_cache_hit(job_id=job.job_id)
                        continue
                pending.append((index, job, data, fingerprint, used_attempts - 1))

            if pending:
                if self.n_workers > 1:
                    executed = self._run_parallel(pending)
                else:
                    executed = self._run_serial(pending)
                for index, result in executed:
                    slots[index] = result
                    if (
                        self.cache is not None
                        and result.status == "ok"
                        and result.fingerprint is not None
                    ):
                        self.cache.put(result.fingerprint, result)

        results = [slot for slot in slots if slot is not None]
        return BatchReport(
            results=results,
            total_seconds=timer.elapsed,
            n_workers=self.n_workers,
            solver_seconds_saved=seconds_saved,
            cache_stats=self.cache.stats() if self.cache is not None else {},
        )

    # -- internals --------------------------------------------------------------

    def _materialize(
        self, job: LearningJob
    ) -> tuple[np.ndarray | None, str | None, int]:
        """Resolve the job's data with retries; returns (data, error, attempts)."""
        error = None
        for attempt in range(1, self.max_retries + 2):
            try:
                return job.resolve_data(), None, attempt
            except Exception as exc:  # noqa: BLE001 - failures become job status
                error = f"{type(exc).__name__}: {exc}"
        return None, error, self.max_retries + 1

    def _run_serial(
        self, pending: list[tuple[int, LearningJob, np.ndarray, str | None, int]]
    ) -> list[tuple[int, JobResult]]:
        executed = []
        for index, job, data, fingerprint, base_attempts in pending:
            result = _execute_with_retry(
                job, data, fingerprint, self.max_retries, base_attempts
            )
            if (
                self.timeout is not None
                and result.status == "ok"
                and result.elapsed_seconds > self.timeout
            ):
                result = JobResult(
                    job_id=result.job_id,
                    solver=result.solver,
                    status="timeout",
                    attempts=result.attempts,
                    elapsed_seconds=result.elapsed_seconds,
                    fingerprint=fingerprint,
                    error=(
                        f"job exceeded the {self.timeout:.3f}s deadline "
                        f"({result.elapsed_seconds:.3f}s)"
                    ),
                )
            executed.append((index, result))
        return executed

    def _run_parallel(
        self, pending: list[tuple[int, LearningJob, np.ndarray, str | None, int]]
    ) -> list[tuple[int, JobResult]]:
        executed: list[tuple[int, JobResult]] = []
        workers = min(self.n_workers, len(pending))
        executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_worker,
            initargs=(dict(job_module._SOLVERS),),
        )
        try:
            future_to_item = {}
            for item in pending:
                index, job, data, fingerprint, base_attempts = item
                if job.data is not None:
                    # The materialized matrix travels as the explicit `data`
                    # argument; don't ship a second copy inside the job spec.
                    job = copy.copy(job)
                    job.data = None
                future = executor.submit(
                    _execute_with_retry,
                    job,
                    data,
                    fingerprint,
                    self.max_retries,
                    base_attempts,
                )
                future_to_item[future] = item

            outstanding = set(future_to_item)
            while outstanding:
                done, outstanding = wait(
                    outstanding, timeout=self.timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Deadline elapsed with nothing finishing: every job still
                    # outstanding has now had at least `timeout` seconds.
                    break
                for future in done:
                    index, job, _, fingerprint, base_attempts = future_to_item[future]
                    try:
                        executed.append((index, future.result()))
                    except Exception as exc:  # noqa: BLE001 - pool crash
                        executed.append(
                            (
                                index,
                                JobResult(
                                    job_id=job.job_id or job.describe(),
                                    solver=job.solver,
                                    status="failed",
                                    attempts=base_attempts + 1,
                                    fingerprint=fingerprint,
                                    error=f"{type(exc).__name__}: {exc}",
                                ),
                            )
                        )
            for future in outstanding:
                # A future that can still be cancelled never reached a worker:
                # it starved in the queue rather than overrunning its budget.
                never_started = future.cancel()
                index, job, _, fingerprint, base_attempts = future_to_item[future]
                if never_started:
                    error = (
                        f"batch deadline ({self.timeout:.3f}s) elapsed before "
                        "the job was assigned a worker"
                    )
                    attempts = base_attempts
                else:
                    error = f"job exceeded the {self.timeout:.3f}s deadline"
                    attempts = base_attempts + 1
                executed.append(
                    (
                        index,
                        JobResult(
                            job_id=job.job_id or job.describe(),
                            solver=job.solver,
                            status="timeout",
                            attempts=attempts,
                            fingerprint=fingerprint,
                            error=error,
                        ),
                    )
                )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return executed
