"""Batch execution of learning jobs on the streaming, preemptible engine.

This is the repo's analog of the paper's production scheduler (Section VI):
a list of :class:`~repro.serve.job.LearningJob` specs goes in, a
:class:`BatchReport` with per-job results and aggregate throughput comes out.
Since the streaming rework, :class:`BatchRunner` is a thin batch-shaped facade
over :class:`~repro.serve.streaming.StreamingRunner` — the engine that runs
jobs on a persistent pre-forked worker pool and yields results as they
complete.

Execution pipeline per job:

1. the sample matrix is materialized in the parent (dataset builders are
   retried up to ``max_retries`` times);
2. when a cache is attached, the job's content fingerprint is looked up and a
   hit is returned without touching a solver;
3. misses are executed — inline for ``n_workers=1`` with no deadline, on a
   dedicated worker process otherwise — with solver failures retried up to
   the same ``max_retries`` budget;
4. successful results are written back to the cache.

Timeout semantics: the deadline is enforced by **hard preemption**.  A job
still running ``timeout`` seconds after its worker started is SIGKILLed (the
worker also arms its own suicide timer as a backstop) and reported with the
``"preempted"`` status; the ``preempt_policy`` decides whether it first gets
requeued for a fresh attempt.  See :mod:`repro.serve.streaming` for the full
preemption model; the old cooperative timeout (wait, then abandon the worker)
is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.serve.cache import ResultCache
from repro.serve.job import JobResult, LearningJob
from repro.serve.streaming import StreamingRunner

__all__ = ["BatchReport", "BatchRunner"]


@dataclass
class BatchReport:
    """Results of one :meth:`BatchRunner.run` call plus aggregate telemetry.

    Attributes
    ----------
    results:
        One :class:`~repro.serve.job.JobResult` per manifest entry, in
        manifest order.
    total_seconds:
        Wall-clock duration of the whole batch.
    n_workers:
        Worker cap the batch ran with.
    solver_seconds_saved:
        Solver time skipped thanks to cache hits.
    cache_stats:
        Snapshot of the attached cache's counters (empty without a cache).
    time_to_first_result:
        Seconds until the first job result was available (``None`` for an
        empty manifest) — the latency the streaming engine optimizes for.
    preemption_stats:
        Kill/requeue counters from the engine (see
        :meth:`~repro.serve.streaming.StreamTelemetry.preemption_summary`).
    """

    results: list[JobResult]
    total_seconds: float
    n_workers: int
    solver_seconds_saved: float = 0.0
    cache_stats: dict[str, float] = field(default_factory=dict)
    time_to_first_result: float | None = None
    preemption_stats: dict[str, float] = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the batch."""
        return len(self.results)

    @property
    def n_ok(self) -> int:
        """Number of jobs that finished with status ``"ok"``."""
        return sum(1 for result in self.results if result.status == "ok")

    @property
    def n_failed(self) -> int:
        """Number of jobs that finished with status ``"failed"``."""
        return sum(1 for result in self.results if result.status == "failed")

    @property
    def n_preempted(self) -> int:
        """Number of jobs killed at their deadline (status ``"preempted"``)."""
        return sum(1 for result in self.results if result.status == "preempted")

    @property
    def n_timeout(self) -> int:
        """Deadline-blown jobs.

        Retained for backward compatibility with the cooperative-timeout era;
        hard preemption records these as ``"preempted"``, so this is an alias
        of :attr:`n_preempted` (plus any legacy ``"timeout"`` records loaded
        from old caches).
        """
        legacy = sum(1 for result in self.results if result.status == "timeout")
        return legacy + self.n_preempted

    @property
    def n_cache_hits(self) -> int:
        """Number of jobs served from the result cache."""
        return sum(1 for result in self.results if result.cache_hit)

    @property
    def jobs_per_second(self) -> float:
        """Aggregate throughput of the batch (0 for an instantaneous batch)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.n_jobs / self.total_seconds

    @property
    def solver_seconds(self) -> float:
        """Sum of per-job solver time (CPU-side work actually executed)."""
        return sum(result.elapsed_seconds for result in self.results)

    def summary(self) -> dict[str, Any]:
        """JSON-able aggregate view (the CLI report's ``summary`` block)."""
        return {
            "n_jobs": self.n_jobs,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "n_timeout": self.n_timeout,
            "n_preempted": self.n_preempted,
            "n_cache_hits": self.n_cache_hits,
            "n_workers": self.n_workers,
            "total_seconds": self.total_seconds,
            "time_to_first_result": self.time_to_first_result,
            "jobs_per_second": self.jobs_per_second,
            "solver_seconds": self.solver_seconds,
            "solver_seconds_saved": self.solver_seconds_saved,
            "cache_stats": dict(self.cache_stats),
            "preemption": dict(self.preemption_stats),
        }


class BatchRunner:
    """Execute a list of jobs serially or on a pool of worker processes.

    Parameters
    ----------
    n_workers:
        1 with no ``timeout`` runs jobs inline; otherwise jobs are dispatched
        to a pre-forked pool of at most ``n_workers`` long-lived workers.
    cache:
        Optional :class:`~repro.serve.cache.ResultCache`; hits skip solver
        execution entirely and successful misses are written back.
    timeout:
        Hard per-job deadline in seconds — overrunning workers are SIGKILLed
        and the job is reported ``"preempted"`` (see module docstring).
    max_retries:
        Additional attempts granted to a failing dataset build or solver run.
    preempt_policy:
        ``"fail"`` (default) or ``"requeue"`` — what happens to a job whose
        worker was killed at the deadline.
    preempt_retries:
        Fresh attempts granted under the ``"requeue"`` policy.
    tracer:
        Optional :class:`~repro.obs.Tracer` forwarded to the engine — per-job
        lifecycle spans plus preemption/cache counters (see
        :class:`~repro.serve.streaming.StreamingRunner`).
    soft_timeout:
        Optional cooperative deadline (seconds, ≤ ``timeout``): the solver is
        asked to stop at the next outer-iteration boundary before the hard
        SIGKILL tier fires.
    max_jobs_per_worker:
        Recycle a pool worker after this many jobs (``None`` = unbounded).
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        max_retries: int = 0,
        preempt_policy: str = "fail",
        preempt_retries: int = 1,
        tracer=None,
        soft_timeout: float | None = None,
        max_jobs_per_worker: int | None = None,
    ) -> None:
        self._engine = StreamingRunner(
            n_workers=n_workers,
            cache=cache,
            timeout=timeout,
            max_retries=max_retries,
            preempt_policy=preempt_policy,
            preempt_retries=preempt_retries,
            tracer=tracer,
            soft_timeout=soft_timeout,
            max_jobs_per_worker=max_jobs_per_worker,
        )

    @property
    def tracer(self):
        """The attached :class:`~repro.obs.Tracer` (``None`` = tracing off)."""
        return self._engine.tracer

    @property
    def n_workers(self) -> int:
        """Worker cap of the underlying engine."""
        return self._engine.n_workers

    @property
    def cache(self) -> ResultCache | None:
        """The attached result cache (``None`` when caching is off)."""
        return self._engine.cache

    @property
    def timeout(self) -> float | None:
        """The hard per-job deadline in seconds (``None`` = unbounded)."""
        return self._engine.timeout

    @property
    def max_retries(self) -> int:
        """Extra attempts granted to failing dataset builds / solver runs."""
        return self._engine.max_retries

    def run(self, jobs: Sequence[LearningJob]) -> BatchReport:
        """Execute ``jobs`` and return a :class:`BatchReport`."""
        return self._engine.run(jobs)
