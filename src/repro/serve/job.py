"""Declarative structure-learning jobs and their results.

A :class:`LearningJob` is everything needed to reproduce one solver run: where
the data comes from (a registered dataset name or an inline sample matrix),
which solver to use (any name in :func:`solver_names` — ``least``,
``least_sparse``, ``notears``, plus anything registered since), the solver
configuration, and the seeds.  Jobs are plain data — picklable for the process
pool, JSON-able for CLI manifests — which is what lets the
:class:`~repro.serve.runner.BatchRunner` fan them out, retry them, and cache
them by content.

Solvers are resolved through the unified backend registry of
:mod:`repro.core.backend`: :meth:`LearningJob.build_backend` returns a
configured :class:`~repro.core.backend.SolverBackend` and
:func:`execute_job` drives it, so every solver — dense or CSR-sparse —
presents the same ``fit`` face to the engine.

:class:`JobResult` is the uniform answer record across all solvers: weights
(dense or CSR) plus timing, iteration counts, convergence, and provenance
(fingerprint, attempts, cache hit).

**Wave jobs** amortize dispatch overhead across many small solves: a job
whose :attr:`LearningJob.wave` is set carries several column-disjoint member
problems stacked side by side in one data matrix.  The worker unpacks the
stack, solves each member independently (per-member seeds, warm starts, and
retry budgets), and returns one :class:`JobResult` whose :attr:`JobResult.parts`
holds one member result each — this is how the sharded solver ships a whole
*wave* of blocks through one pool dispatch instead of paying per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.backend import (
    BackendSpec,
    LegacyBackend,
    get_spec,
    make_solver,
    register_backend,
    unregister_backend,
)
from repro.core.backend import solver_names as solver_names
from repro.exceptions import SoftDeadlineExceeded, ValidationError
from repro.utils.timer import Timer
from repro.utils.validation import ensure_2d

__all__ = [
    "SOLVER_NAMES",
    "solver_names",
    "LearningJob",
    "JobResult",
    "execute_job",
    "register_solver",
    "unregister_solver",
]


def __getattr__(name: str):
    """Keep ``SOLVER_NAMES`` as a *live* module attribute.

    The old module constant was frozen at import time and went stale after
    :func:`register_solver`/:func:`unregister_solver`; computing it on access
    keeps existing callers correct.  New code should call
    :func:`solver_names`.
    """
    if name == "SOLVER_NAMES":
        return solver_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def register_solver(
    name: str,
    solver_class: type,
    config_class: type,
    overwrite: bool = False,
    sparse: bool = False,
) -> None:
    """Register a custom solver for use in jobs.

    ``solver_class(config)`` must expose ``fit(data, seed=..., ...)`` returning
    an object with at least ``weights``, ``constraint_value``, ``converged``
    and ``n_outer_iterations`` attributes (the :class:`LEASTResult` contract).
    The pair is wrapped in a :class:`~repro.core.backend.LegacyBackend` and
    entered into the live registry of :mod:`repro.core.backend` — code that
    implements the :class:`~repro.core.backend.SolverBackend` protocol
    directly should use :func:`repro.core.backend.register_backend` instead.
    ``sparse=True`` marks solvers whose result weights are CSR.
    """
    register_backend(
        BackendSpec(
            name=name,
            backend_class=LegacyBackend,
            config_class=config_class,
            solver_class=solver_class,
            sparse=sparse,
        ),
        overwrite=overwrite,
    )


def unregister_solver(name: str) -> None:
    """Remove a registered solver (built-ins included — use with care)."""
    unregister_backend(name)


@dataclass
class LearningJob:
    """One schedulable structure-learning task.

    Attributes
    ----------
    solver:
        One of :func:`solver_names` (the live backend registry).
    dataset:
        Name of a dataset registered in :mod:`repro.datasets.registry`.
        Exactly one of ``dataset`` and ``data`` must be provided.
    data:
        Inline ``n × d`` sample matrix (alternative to ``dataset``).
    config:
        Keyword arguments for the solver's config class (plain JSON-able
        values so manifests and cache fingerprints stay stable).
    seed:
        Seed of the solver run.
    dataset_seed:
        Seed passed to the dataset builder; defaults to ``seed`` so a manifest
        entry is reproducible with a single number.
    dataset_options:
        Extra keyword arguments for the dataset builder (e.g. ``n_nodes``).
    init_weights:
        Optional warm-start matrix forwarded to the solver's ``fit``.  For a
        wave job this is the *stacked* (block-diagonal) matrix over all
        members; each member receives its own diagonal block.
    job_id:
        Stable identifier used in reports; auto-assigned by the runner when
        omitted.
    wave:
        Optional list of member descriptors turning this into a *wave* job:
        each entry is a dict with ``job_id`` (the member's report id),
        ``n_columns`` (how many columns of :attr:`data` belong to it — the
        members tile the data matrix left to right), and optionally ``seed``
        (defaults to the job-level seed).  Wave jobs require inline data.
    """

    solver: str = "least"
    dataset: str | None = None
    data: np.ndarray | None = None
    config: dict[str, Any] = field(default_factory=dict)
    seed: int | None = 0
    dataset_seed: int | None = None
    dataset_options: dict[str, Any] = field(default_factory=dict)
    init_weights: np.ndarray | sp.spmatrix | None = None
    job_id: str | None = None
    wave: list[dict[str, Any]] | None = None

    def __post_init__(self) -> None:
        spec = get_spec(self.solver)  # raises for unknown names
        if (self.dataset is None) == (self.data is None):
            raise ValidationError(
                "exactly one of dataset (a registry name) and data (an inline "
                "sample matrix) must be provided"
            )
        if self.data is not None:
            self.data = ensure_2d(self.data, "data")
        if self.init_weights is not None and not spec.supports_init_weights:
            raise ValidationError(
                f"the {self.solver} solver does not support init_weights"
            )
        self.config = dict(self.config)
        self.dataset_options = dict(self.dataset_options)
        if self.wave is not None:
            if self.dataset is not None:
                raise ValidationError("wave jobs require inline data")
            if not self.wave:
                raise ValidationError("a wave job must carry at least one member")
            self.wave = [dict(entry) for entry in self.wave]
            total = 0
            for entry in self.wave:
                n_columns = entry.get("n_columns")
                if not isinstance(n_columns, int) or n_columns < 1:
                    raise ValidationError(
                        "every wave entry needs a positive integer n_columns, "
                        f"got {entry!r}"
                    )
                if not entry.get("job_id"):
                    raise ValidationError(
                        f"every wave entry needs a job_id, got {entry!r}"
                    )
                total += n_columns
            if self.data is not None and total != self.data.shape[1]:
                raise ValidationError(
                    f"wave entries cover {total} columns but the stacked data "
                    f"matrix has {self.data.shape[1]}"
                )

    # -- execution building blocks --------------------------------------------

    def resolve_data(self) -> np.ndarray:
        """Materialize the sample matrix (inline data or registry lookup)."""
        if self.data is not None:
            return self.data
        from repro.datasets.registry import load_dataset

        seed = self.dataset_seed if self.dataset_seed is not None else self.seed
        bundle = load_dataset(self.dataset, seed=seed, **self.dataset_options)
        return ensure_2d(bundle["data"], f"dataset {self.dataset!r}")

    def build_config(self):
        """Instantiate the solver's config dataclass from :attr:`config`."""
        try:
            return get_spec(self.solver).config_class(**self.config)
        except TypeError as exc:
            raise ValidationError(
                f"invalid config for solver {self.solver!r}: {exc}"
            ) from exc

    def build_backend(self):
        """Build the configured :class:`~repro.core.backend.SolverBackend`."""
        return make_solver(self.solver, config=self.build_config())

    def build_solver(self):
        """Instantiate the configured backend (alias of :meth:`build_backend`,
        kept for callers of the pre-backend API)."""
        return self.build_backend()

    def describe(self) -> str:
        """Short human-readable label used in logs and reports."""
        source = self.dataset if self.dataset is not None else "inline"
        return f"{self.solver}:{source}:seed={self.seed}"

    # -- manifest (de)serialization --------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (inline data becomes nested lists)."""
        payload: dict[str, Any] = {"solver": self.solver, "seed": self.seed}
        if self.dataset is not None:
            payload["dataset"] = self.dataset
        if self.data is not None:
            payload["data"] = np.asarray(self.data).tolist()
        if self.config:
            payload["config"] = dict(self.config)
        if self.dataset_seed is not None:
            payload["dataset_seed"] = self.dataset_seed
        if self.dataset_options:
            payload["dataset_options"] = dict(self.dataset_options)
        if self.init_weights is not None:
            init = self.init_weights
            if sp.issparse(init):
                init = init.toarray()
            payload["init_weights"] = np.asarray(init).tolist()
        if self.job_id is not None:
            payload["job_id"] = self.job_id
        if self.wave is not None:
            payload["wave"] = [dict(entry) for entry in self.wave]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "LearningJob":
        """Build a job from a manifest entry (inverse of :meth:`to_dict`)."""
        if not isinstance(payload, dict):
            raise ValidationError(f"manifest entries must be objects, got {payload!r}")
        known = {
            "solver",
            "dataset",
            "data",
            "config",
            "seed",
            "dataset_seed",
            "dataset_options",
            "init_weights",
            "job_id",
            "wave",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(f"unknown manifest keys: {sorted(unknown)}")
        fields = dict(payload)
        for key in ("data", "init_weights"):
            if fields.get(key) is not None:
                fields[key] = np.asarray(fields[key], dtype=float)
        return cls(**fields)


@dataclass
class JobResult:
    """Uniform outcome record of one job across all solvers.

    Attributes
    ----------
    job_id, solver:
        Provenance: which manifest entry produced this result, on which
        solver.
    status:
        ``"ok"`` (solved), ``"failed"`` (dataset or solver error after all
        retries), or ``"preempted"`` (the worker was killed at its hard
        deadline; the legacy ``"timeout"`` status only appears in results
        unpickled from caches written before hard preemption existed).
    weights:
        Learned weight matrix (dense or CSR); ``None`` unless ``status`` is
        ``"ok"``.
    constraint_value, converged, n_outer_iterations, n_inner_iterations:
        Solver telemetry copied from the underlying result object.
    elapsed_seconds:
        Solver wall-clock time (0 for cache hits).
    attempts:
        Dataset-build plus solver attempts consumed (0 for cache hits).
    cache_hit:
        True when the result was served from a :class:`~repro.serve.cache.ResultCache`.
    fingerprint:
        Content-addressed cache key of the job (``None`` when caching is off).
    error:
        Human-readable failure/preemption reason, ``None`` on success.
    parts:
        For a wave job, one member :class:`JobResult` per wave entry (in
        wave order); the wave-level :attr:`weights` stays ``None`` — member
        sub-graphs live on the parts.  ``None`` for ordinary jobs, and for
        wave jobs whose worker died before delivering anything (hard
        preemption, crash): there the wave-level status applies to every
        member.
    """

    job_id: str
    solver: str
    status: str  # "ok" | "failed" | "preempted" (legacy: "timeout")
    weights: np.ndarray | sp.spmatrix | None = None
    constraint_value: float = float("nan")
    converged: bool = False
    n_outer_iterations: int = 0
    n_inner_iterations: int = 0
    elapsed_seconds: float = 0.0
    attempts: int = 1
    cache_hit: bool = False
    fingerprint: str | None = None
    error: str | None = None
    parts: "list[JobResult] | None" = None

    @property
    def ok(self) -> bool:
        """True when the job solved successfully (``status == "ok"``)."""
        return self.status == "ok"

    @property
    def all_parts_ok(self) -> bool:
        """True when every wave member solved (vacuously True for non-waves)."""
        if self.parts is None:
            return True
        return all(part.status == "ok" for part in self.parts)

    @property
    def n_edges(self) -> int:
        """Non-zero entries of the learned weights (0 when the job failed).

        A wave result sums the edges of its member parts.
        """
        if self.parts is not None:
            return sum(part.n_edges for part in self.parts)
        if self.weights is None:
            return 0
        if sp.issparse(self.weights):
            return int(self.weights.nnz)
        return int(np.count_nonzero(self.weights))

    def as_cache_hit(self, job_id: str | None = None) -> "JobResult":
        """Copy marked as served from cache (lookup time, not solver time).

        ``job_id`` re-labels the copy for the job that triggered the lookup —
        a shared cache can serve a result produced under a different id.
        """
        return replace(
            self,
            job_id=job_id if job_id is not None else self.job_id,
            cache_hit=True,
            attempts=0,
            elapsed_seconds=0.0,
        )

    def summary(self) -> dict[str, Any]:
        """JSON-able digest without the weight matrix.

        ``constraint_value`` is mapped to ``None`` when NaN (failed/preempted
        jobs) so the digest serializes to *strict* JSON — NDJSON consumers of
        the CLI's ``--stream`` mode reject bare ``NaN`` tokens.
        """
        constraint = float(self.constraint_value)
        digest = {
            "job_id": self.job_id,
            "solver": self.solver,
            "status": self.status,
            "converged": self.converged,
            "constraint_value": None if np.isnan(constraint) else constraint,
            "n_edges": self.n_edges,
            "n_outer_iterations": self.n_outer_iterations,
            "n_inner_iterations": self.n_inner_iterations,
            "elapsed_seconds": self.elapsed_seconds,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "fingerprint": self.fingerprint,
            "error": self.error,
        }
        if self.parts is not None:
            digest["n_parts"] = len(self.parts)
            digest["n_parts_ok"] = sum(1 for p in self.parts if p.status == "ok")
        return digest


def _wave_member_job(
    job: LearningJob,
    entry: dict[str, Any],
    segment: np.ndarray,
    init: np.ndarray | sp.spmatrix | None,
) -> LearningJob:
    """Build the standalone job of one wave member over its column segment."""
    seed = entry.get("seed", job.seed)
    return LearningJob(
        solver=job.solver,
        data=segment,
        config=dict(job.config),
        seed=seed,
        init_weights=init,
        job_id=str(entry["job_id"]),
    )


def _execute_wave(
    job: LearningJob,
    data: np.ndarray,
    fingerprint: str | None,
    deadline_hooks: list | None,
    max_retries: int,
) -> JobResult:
    """Solve every member of a wave job sequentially; never raises.

    The members tile ``data`` left to right; each is solved as its own
    standalone job (own seed, own diagonal block of the stacked
    ``init_weights``, own retry budget).  A member failure costs only that
    member.  A soft-deadline stop (:class:`~repro.exceptions.SoftDeadlineExceeded`
    raised by a hook mid-solve) marks the interrupted member and every
    not-yet-started member ``"preempted"`` while keeping finished parts.
    """
    assert job.wave is not None
    widths = [int(entry["n_columns"]) for entry in job.wave]
    if sum(widths) != data.shape[1]:
        raise ValidationError(
            f"wave entries cover {sum(widths)} columns but the stacked data "
            f"matrix has {data.shape[1]}"
        )
    parts: list[JobResult] = []
    offset = 0
    preempted: str | None = None
    for entry, width in zip(job.wave, widths):
        segment = data[:, offset : offset + width]
        init = None
        if job.init_weights is not None:
            block = job.init_weights[offset : offset + width, offset : offset + width]
            init = block.tocsr() if sp.issparse(block) else block
        offset += width
        member = _wave_member_job(job, entry, segment, init)
        member_id = member.job_id or member.describe()
        if preempted is not None:
            parts.append(
                JobResult(
                    job_id=member_id,
                    solver=job.solver,
                    status="preempted",
                    attempts=0,
                    error=f"wave stopped before this member: {preempted}",
                )
            )
            continue
        attempts = 0
        last_error = "member was never attempted"
        for _ in range(max_retries + 1):
            attempts += 1
            try:
                part = execute_job(
                    member, data=segment, deadline_hooks=deadline_hooks
                )
                part.attempts = attempts
                parts.append(part)
                break
            except SoftDeadlineExceeded as exc:
                preempted = str(exc)
                parts.append(
                    JobResult(
                        job_id=member_id,
                        solver=job.solver,
                        status="preempted",
                        attempts=attempts,
                        error=preempted,
                    )
                )
                break
            except Exception as exc:  # noqa: BLE001 - failures become status
                last_error = f"{type(exc).__name__}: {exc}"
        else:
            parts.append(
                JobResult(
                    job_id=member_id,
                    solver=job.solver,
                    status="failed",
                    attempts=attempts,
                    error=last_error,
                )
            )
    n_failed = sum(1 for part in parts if part.status == "failed")
    if preempted is not None:
        status, error = "preempted", preempted
    elif n_failed:
        status = "failed"
        first = next(part for part in parts if part.status == "failed")
        error = f"{n_failed}/{len(parts)} wave members failed; first: {first.error}"
    else:
        status, error = "ok", None
    return JobResult(
        job_id=job.job_id or job.describe(),
        solver=job.solver,
        status=status,
        converged=all(part.converged for part in parts) if status == "ok" else False,
        n_outer_iterations=sum(part.n_outer_iterations for part in parts),
        n_inner_iterations=sum(part.n_inner_iterations for part in parts),
        elapsed_seconds=sum(part.elapsed_seconds for part in parts),
        fingerprint=fingerprint,
        error=error,
        parts=parts,
    )


def execute_job(
    job: LearningJob,
    data: np.ndarray | None = None,
    fingerprint: str | None = None,
    deadline_hooks: list | None = None,
    max_retries: int = 0,
) -> JobResult:
    """Run ``job`` once and return its :class:`JobResult`.

    ``data`` short-circuits :meth:`LearningJob.resolve_data` when the caller
    (the runner) already materialized the sample matrix.  Solver and dataset
    exceptions propagate to the caller, which owns retry/timeout policy.

    ``deadline_hooks`` are extra per-outer-iteration callbacks forwarded to
    the backend's ``fit`` — this is how the worker pool injects its
    soft-deadline check (:class:`repro.exceptions.SoftDeadlineExceeded`) so a
    deadline-bound solve can stop cooperatively at an iteration boundary.

    Wave jobs (:attr:`LearningJob.wave` set) are unpacked here, worker-side:
    each member is solved independently over its own column segment and the
    returned result carries one entry per member in :attr:`JobResult.parts`.
    ``max_retries`` grants each *member* that many extra attempts (ordinary
    jobs ignore it — their retry loop lives in the caller), member failures
    become ``"failed"`` parts instead of exceptions, and a soft-deadline stop
    preempts only the interrupted and not-yet-started members.

    When a tracer is active (:func:`repro.obs.current_tracer`), the solve is
    wrapped in a ``solve`` span and the backend's per-outer-iteration hooks
    emit one ``outer_iter`` child span per iteration, so solver-internal time
    decomposes in the merged trace.
    """
    from repro.obs import OuterIterationSpans, current_tracer

    if data is None:
        data = job.resolve_data()
    if job.wave is not None:
        return _execute_wave(job, data, fingerprint, deadline_hooks, max_retries)
    backend = job.build_backend()
    tracer = current_tracer()
    extra_hooks = list(deadline_hooks) if deadline_hooks else []
    timer = Timer()
    if tracer is None:
        with timer:
            result = backend.fit(
                data,
                init_weights=job.init_weights,
                deadline_hooks=extra_hooks or None,
                rng=job.seed,
            )
    else:
        with tracer.span(
            "solve", job_id=job.job_id or job.describe(), solver=job.solver
        ) as span:
            hook = OuterIterationSpans(tracer, parent=span)
            with timer:
                result = backend.fit(
                    data,
                    init_weights=job.init_weights,
                    deadline_hooks=[hook, *extra_hooks],
                    rng=job.seed,
                )
            span.set_attributes(
                n_outer_iterations=int(result.n_outer_iterations),
                converged=bool(result.converged),
            )
    return JobResult(
        job_id=job.job_id or job.describe(),
        solver=job.solver,
        status="ok",
        weights=result.weights,
        constraint_value=float(result.constraint_value),
        converged=bool(result.converged),
        n_outer_iterations=int(result.n_outer_iterations),
        n_inner_iterations=int(result.n_inner_iterations),
        elapsed_seconds=timer.elapsed,
        fingerprint=fingerprint,
    )
