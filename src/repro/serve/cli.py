"""Command-line entry point: run a job manifest and emit a JSON report.

Usage::

    python -m repro.serve manifest.json --workers 4 --output report.json
    repro-serve manifest.json --cache-dir .serve-cache --max-retries 1
    repro-serve manifest.json --workers 4 --timeout 30 --stream

The manifest is either ``{"jobs": [...]}`` or a bare JSON list, where each
entry follows :meth:`repro.serve.job.LearningJob.from_dict`::

    {
      "jobs": [
        {"dataset": "er2", "solver": "least", "seed": 0,
         "dataset_options": {"n_nodes": 30},
         "config": {"max_outer_iterations": 6}},
        {"dataset": "sf4", "solver": "least_sparse", "seed": 1}
      ]
    }

Without ``--stream`` the report (the aggregate ``summary`` block of
:class:`~repro.serve.runner.BatchReport` plus one digest per job) is printed
to stdout, or written to ``--output``.  With ``--stream`` stdout instead
carries one NDJSON line per *completed* job, emitted the moment the streaming
engine yields it (completion order, not manifest order); the full report then
goes to ``--output`` when given.  Weight matrices are never serialized — use
the cache or the Python API to retrieve them.

``--timeout`` is a hard deadline: overrunning workers are SIGKILLed and the
job is reported ``"preempted"`` (``--preempt-policy requeue`` grants killed
jobs a fresh attempt first).  Exit status is 0 when every job succeeded, 1
when any failed, was preempted, or timed out, 2 for a malformed manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.exceptions import ValidationError
from repro.serve.cache import DiskCache
from repro.serve.job import JobResult, LearningJob
from repro.serve.streaming import PREEMPT_POLICIES, StreamingRunner

__all__ = ["build_parser", "load_manifest", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run a batch of structure-learning jobs from a JSON manifest.",
    )
    parser.add_argument("manifest", help="path to the job manifest (JSON), or - for stdin")
    parser.add_argument(
        "--workers", type=int, default=1, help="max concurrent worker processes"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="hard per-job deadline in seconds (overrunning workers are killed)",
    )
    parser.add_argument(
        "--preempt-policy",
        choices=PREEMPT_POLICIES,
        default="fail",
        help="what happens to a job killed at its deadline (default: fail)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, help="extra attempts for failing jobs"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result cache (created if missing)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="LRU bound on the number of disk-cache entries",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="LRU bound on the total disk-cache size in bytes",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="emit one NDJSON line per completed job on stdout as results arrive",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here (default: stdout)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary"
    )
    return parser


def load_manifest(source: str) -> list[LearningJob]:
    """Parse the manifest file (or stdin when ``source`` is ``-``) into jobs."""
    if source == "-":
        raw = sys.stdin.read()
    else:
        path = Path(source)
        if not path.exists():
            raise ValidationError(f"manifest file not found: {source}")
        raw = path.read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"manifest is not valid JSON: {exc}") from exc
    if isinstance(payload, dict):
        entries = payload.get("jobs")
        if not isinstance(entries, list):
            raise ValidationError('manifest object must contain a "jobs" list')
    elif isinstance(payload, list):
        entries = payload
    else:
        raise ValidationError("manifest must be a JSON object or list")
    if not entries:
        raise ValidationError("manifest contains no jobs")
    return [LearningJob.from_dict(entry) for entry in entries]


def _emit_ndjson(result: JobResult) -> None:
    """Print one completed job as a single NDJSON line (flushed immediately)."""
    print(json.dumps(result.summary(), sort_keys=True), flush=True)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns the process exit code (see module docstring)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        jobs = load_manifest(args.manifest)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        cache = (
            DiskCache(
                args.cache_dir,
                max_entries=args.cache_max_entries,
                max_bytes=args.cache_max_bytes,
            )
            if args.cache_dir
            else None
        )
        runner = StreamingRunner(
            n_workers=args.workers,
            cache=cache,
            timeout=args.timeout,
            max_retries=args.max_retries,
            preempt_policy=args.preempt_policy,
        )
    except (ValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = runner.run(jobs, on_result=_emit_ndjson if args.stream else None)

    if args.output or not args.stream:
        payload = {
            "summary": report.summary(),
            "jobs": [result.summary() for result in report.results],
        }
        serialized = json.dumps(payload, indent=2, sort_keys=True)
        if args.output:
            Path(args.output).write_text(serialized + "\n")
        else:
            print(serialized)

    if not args.quiet:
        summary = report.summary()
        print(
            f"{summary['n_jobs']} jobs: {summary['n_ok']} ok, "
            f"{summary['n_failed']} failed, {summary['n_preempted']} preempted, "
            f"{summary['n_cache_hits']} cache hits | "
            f"{summary['total_seconds']:.2f}s wall, "
            f"first result after {summary['time_to_first_result'] or 0.0:.2f}s, "
            f"{summary['jobs_per_second']:.2f} jobs/s "
            f"({summary['n_workers']} workers)",
            file=sys.stderr,
        )

    return 0 if report.n_failed + report.n_timeout == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
