"""Command-line entry point: run a job manifest and emit a JSON report.

Usage::

    python -m repro.serve manifest.json --workers 4 --output report.json
    repro-serve manifest.json --cache-dir .serve-cache --max-retries 1

The manifest is either ``{"jobs": [...]}`` or a bare JSON list, where each
entry follows :meth:`repro.serve.job.LearningJob.from_dict`::

    {
      "jobs": [
        {"dataset": "er2", "solver": "least", "seed": 0,
         "dataset_options": {"n_nodes": 30},
         "config": {"max_outer_iterations": 6}},
        {"dataset": "sf4", "solver": "least_sparse", "seed": 1}
      ]
    }

The report carries the aggregate ``summary`` block of
:class:`~repro.serve.runner.BatchReport` plus one digest per job; weight
matrices are not serialized (use the cache or the Python API to retrieve
them).  Exit status is 0 when every job succeeded, 1 otherwise, 2 for a
malformed manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.exceptions import ValidationError
from repro.serve.cache import DiskCache
from repro.serve.job import LearningJob
from repro.serve.runner import BatchRunner

__all__ = ["build_parser", "load_manifest", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run a batch of structure-learning jobs from a JSON manifest.",
    )
    parser.add_argument("manifest", help="path to the job manifest (JSON), or - for stdin")
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-job deadline in seconds"
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, help="extra attempts for failing jobs"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result cache (created if missing)",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here (default: stdout)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary"
    )
    return parser


def load_manifest(source: str) -> list[LearningJob]:
    """Parse the manifest file (or stdin when ``source`` is ``-``) into jobs."""
    if source == "-":
        raw = sys.stdin.read()
    else:
        path = Path(source)
        if not path.exists():
            raise ValidationError(f"manifest file not found: {source}")
        raw = path.read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"manifest is not valid JSON: {exc}") from exc
    if isinstance(payload, dict):
        entries = payload.get("jobs")
        if not isinstance(entries, list):
            raise ValidationError('manifest object must contain a "jobs" list')
    elif isinstance(payload, list):
        entries = payload
    else:
        raise ValidationError("manifest must be a JSON object or list")
    if not entries:
        raise ValidationError("manifest contains no jobs")
    return [LearningJob.from_dict(entry) for entry in entries]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        jobs = load_manifest(args.manifest)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        cache = DiskCache(args.cache_dir) if args.cache_dir else None
        runner = BatchRunner(
            n_workers=args.workers,
            cache=cache,
            timeout=args.timeout,
            max_retries=args.max_retries,
        )
    except (ValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = runner.run(jobs)

    payload = {
        "summary": report.summary(),
        "jobs": [result.summary() for result in report.results],
    }
    serialized = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(serialized + "\n")
    else:
        print(serialized)

    if not args.quiet:
        summary = report.summary()
        print(
            f"{summary['n_jobs']} jobs: {summary['n_ok']} ok, "
            f"{summary['n_failed']} failed, {summary['n_timeout']} timed out, "
            f"{summary['n_cache_hits']} cache hits | "
            f"{summary['total_seconds']:.2f}s wall, "
            f"{summary['jobs_per_second']:.2f} jobs/s "
            f"({summary['n_workers']} workers)",
            file=sys.stderr,
        )

    return 0 if report.n_failed + report.n_timeout == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
