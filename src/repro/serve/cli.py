"""Command-line entry point: run a job manifest and emit a JSON report.

Usage::

    python -m repro.serve manifest.json --workers 4 --output report.json
    repro-serve manifest.json --cache-dir .serve-cache --max-retries 1
    repro-serve manifest.json --workers 4 --timeout 30 --stream
    repro-serve shard data.npy --workers 4 --edge-threshold 0.3

The manifest is either ``{"jobs": [...]}`` or a bare JSON list, where each
entry follows :meth:`repro.serve.job.LearningJob.from_dict`::

    {
      "jobs": [
        {"dataset": "er2", "solver": "least", "seed": 0,
         "dataset_options": {"n_nodes": 30},
         "config": {"max_outer_iterations": 6}},
        {"dataset": "sf4", "solver": "least_sparse", "seed": 1}
      ]
    }

Without ``--stream`` the report (the aggregate ``summary`` block of
:class:`~repro.serve.runner.BatchReport` plus one digest per job) is printed
to stdout, or written to ``--output``.  With ``--stream`` stdout instead
carries one NDJSON line per *completed* job, emitted the moment the streaming
engine yields it (completion order, not manifest order); the full report then
goes to ``--output`` when given.  Weight matrices are never serialized — use
the cache or the Python API to retrieve them.

``--timeout`` is a hard deadline: overrunning workers are SIGKILLed and the
job is reported ``"preempted"`` (``--preempt-policy requeue`` grants killed
jobs a fresh attempt first).  Exit status is 0 when every job succeeded, 1
when any failed, was preempted, or timed out, 2 for a malformed manifest.

Observability (both faces): ``--trace-out trace.ndjson`` records the run's
spans — per-job ``queue_wait → worker_spawn → data_materialize → solve →
cache_store`` trees, merged across worker processes — and ``--metrics-out
metrics.json`` dumps the metrics registry on exit (``--metrics-format
prometheus`` switches to the text exposition).  See ``docs/observability.md``
for the span model and schema.

The ``daemon`` subcommand turns the service resident: ``repro-serve daemon
spool/ --workers 4 --timeout 30`` keeps a pre-forked worker pool alive and
trades NDJSON with clients through the spool directory — submissions dropped
into ``spool/incoming/``, per-file result streams appended under
``spool/results/`` as each job finishes (see :mod:`repro.serve.daemon` for
the spool protocol, per-tenant fairness, and admission control).  ``SIGTERM``
or touching ``spool/stop`` drains accepted jobs and exits 0.

The ``shard`` subcommand instead solves **one large problem** by block
partition: it loads a sample matrix (``.npy``, or ``.csv``/``.txt`` with
comma-separated rows), plans blocks from the correlation skeleton
(:class:`~repro.shard.planner.ShardPlanner`), solves each block as a streamed
job (:class:`~repro.shard.executor.ShardExecutor` — ``--timeout`` becomes a
hard *per-block* deadline), and stitches the surviving sub-graphs into a
global DAG.  The JSON report carries the plan/stitch digests and the gap
record; ``--save-weights`` additionally writes the stitched matrix as
``.npy``.  Exit status is 0 when every block completed, 1 when the stitched
graph has gaps, 2 for unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.serve.cache import DiskCache
from repro.serve.job import JobResult, LearningJob, solver_names
from repro.serve.streaming import PREEMPT_POLICIES, StreamingRunner

__all__ = [
    "build_daemon_parser",
    "build_parser",
    "build_shard_parser",
    "daemon_main",
    "load_manifest",
    "load_sample_matrix",
    "main",
    "shard_main",
]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-serve`` argument parser.

    The description lists the solvers from the *live* backend registry, so
    ``repro-serve --help`` reflects :func:`repro.serve.job.register_solver`
    calls made before parsing instead of an import-time snapshot.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Run a batch of structure-learning jobs from a JSON manifest. "
            f"Registered solvers: {', '.join(solver_names())}."
        ),
    )
    parser.add_argument("manifest", help="path to the job manifest (JSON), or - for stdin")
    parser.add_argument(
        "--workers", type=int, default=1, help="max concurrent worker processes"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="hard per-job deadline in seconds (overrunning workers are killed)",
    )
    parser.add_argument(
        "--soft-timeout",
        type=float,
        default=None,
        help=(
            "cooperative per-job deadline in seconds: the solver is asked to "
            "stop at the next outer-iteration boundary, sparing its worker "
            "(must not exceed --timeout, which stays the SIGKILL escalation)"
        ),
    )
    parser.add_argument(
        "--preempt-policy",
        choices=PREEMPT_POLICIES,
        default="fail",
        help="what happens to a job killed at its deadline (default: fail)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, help="extra attempts for failing jobs"
    )
    parser.add_argument(
        "--max-jobs-per-worker",
        type=int,
        default=None,
        help="recycle each pooled worker after serving this many jobs",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result cache (created if missing)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="LRU bound on the number of disk-cache entries",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="LRU bound on the total disk-cache size in bytes",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="emit one NDJSON line per completed job on stdout as results arrive",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here (default: stdout)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary"
    )
    _add_obs_arguments(parser)
    return parser


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags (tracing + metrics export)."""
    parser.add_argument(
        "--trace-out",
        default=None,
        help=(
            "write the run's spans here as NDJSON (one event per line; "
            "see docs/observability.md for the schema)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics registry here on exit",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "prometheus"),
        default="json",
        help="format of --metrics-out: json dump or Prometheus text exposition",
    )


def _build_tracer(args: argparse.Namespace):
    """The run's :class:`~repro.obs.Tracer`, or ``None`` with tracing off.

    ``--trace-out`` spools spans to NDJSON as they finish; ``--metrics-out``
    alone still needs a tracer (the instrumented layers fold counters into
    its registry) but keeps the spans in memory.
    """
    if not (args.trace_out or args.metrics_out):
        return None
    from repro.obs import InMemorySink, NDJSONFileSink, Tracer

    sink = NDJSONFileSink(args.trace_out) if args.trace_out else InMemorySink()
    return Tracer(sink=sink)


def _write_obs_outputs(tracer, args: argparse.Namespace) -> None:
    """Close the tracer and write ``--metrics-out`` (no-op without a tracer)."""
    if tracer is None:
        return
    tracer.close()
    if args.metrics_out:
        if args.metrics_format == "prometheus":
            payload = tracer.metrics.to_prometheus()
        else:
            payload = (
                json.dumps(tracer.metrics.as_dict(), indent=2, sort_keys=True) + "\n"
            )
        Path(args.metrics_out).write_text(payload)


def _cache_summary_line(stats: dict) -> str:
    """The human cache digest printed under the final summary."""
    return (
        f"cache: {stats.get('hits', 0):.0f} hits, "
        f"{stats.get('misses', 0):.0f} misses "
        f"(hit rate {stats.get('hit_rate', 0.0):.1%}), "
        f"{stats.get('evictions', 0):.0f} evictions"
    )


def _latency_summary_line(metrics) -> str | None:
    """The per-job latency percentile digest, or ``None`` with no samples.

    Reads the ``serve_job_seconds`` histogram the streaming engine observes
    per finished job; the percentiles are bucket-interpolated estimates
    (:meth:`repro.obs.Histogram.quantile`).
    """
    histogram = metrics.histogram("serve_job_seconds")
    if histogram.count == 0:
        return None
    p = histogram.percentiles()
    return (
        f"latency: n={histogram.count} mean={histogram.mean:.3f}s "
        f"p50={p['p50']:.3f}s p95={p['p95']:.3f}s p99={p['p99']:.3f}s"
    )


def load_manifest(source: str) -> list[LearningJob]:
    """Parse the manifest file (or stdin when ``source`` is ``-``) into jobs."""
    if source == "-":
        raw = sys.stdin.read()
    else:
        path = Path(source)
        if not path.exists():
            raise ValidationError(f"manifest file not found: {source}")
        raw = path.read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"manifest is not valid JSON: {exc}") from exc
    if isinstance(payload, dict):
        entries = payload.get("jobs")
        if not isinstance(entries, list):
            raise ValidationError('manifest object must contain a "jobs" list')
    elif isinstance(payload, list):
        entries = payload
    else:
        raise ValidationError("manifest must be a JSON object or list")
    if not entries:
        raise ValidationError("manifest contains no jobs")
    return [LearningJob.from_dict(entry) for entry in entries]


def _emit_ndjson(result: JobResult) -> None:
    """Print one completed job as a single NDJSON line (flushed immediately)."""
    print(json.dumps(result.summary(), sort_keys=True), flush=True)


def build_shard_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``repro-serve shard`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-serve shard",
        description=(
            "Solve one large structure-learning problem by block partition: "
            "plan blocks from the correlation skeleton, solve each block as a "
            "streamed job, stitch the results into a global DAG."
        ),
    )
    parser.add_argument(
        "data", help="sample matrix: .npy, or .csv/.txt with comma-separated rows"
    )
    parser.add_argument(
        "--skeleton-threshold",
        type=float,
        default=0.2,
        help="|correlation| above which two columns are skeleton neighbors",
    )
    parser.add_argument(
        "--max-block-size", type=int, default=64, help="max core nodes per block"
    )
    parser.add_argument(
        "--min-block-size",
        type=int,
        default=1,
        help="pack smaller skeleton components together up to this size",
    )
    parser.add_argument(
        "--halo-depth",
        type=int,
        default=1,
        help="skeleton hops of halo context around each block (0 disables)",
    )
    parser.add_argument(
        "--max-halo-size",
        type=int,
        default=None,
        help="cap on halo nodes per block (strongest correlations kept)",
    )
    parser.add_argument(
        "--partition-columns",
        type=int,
        default=None,
        help=(
            "hierarchical planning: plan each contiguous run of this many "
            "columns independently and overlap its block solves with planning "
            "the next partition (no global skeleton is ever materialized)"
        ),
    )
    parser.add_argument(
        "--wave-blocks",
        type=int,
        default=None,
        help=(
            "wave scheduling: ship this many consecutive blocks per job, "
            "unpacked and solved member-by-member inside the worker "
            "(default: one job per block)"
        ),
    )
    parser.add_argument(
        "--boundary-rounds",
        type=int,
        default=0,
        help=(
            "after the first stitch, re-plan and re-solve the boundary node "
            "set (missing cores plus all halos) this many times, warm-started "
            "from the stitched graph (default: 0, off)"
        ),
    )
    parser.add_argument(
        "--solver",
        default="least",
        help=(
            "registered solver used for every block; validated against the "
            f"live registry (currently: {', '.join(solver_names())}). "
            "least_sparse keeps blocks CSR end to end"
        ),
    )
    parser.add_argument(
        "--config",
        default=None,
        help='solver config as inline JSON, e.g. \'{"max_outer_iterations": 5}\'',
    )
    parser.add_argument(
        "--edge-threshold",
        type=float,
        default=0.05,
        help=(
            "drop |weight| below this from each block before stitching "
            "(default 0.05; raw solver outputs are near-dense, so stitching "
            "at 0 is slow and its conflict counters are noise)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (block k solves with seed+k)"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="max concurrent worker processes"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="hard per-BLOCK deadline in seconds (overrunning workers are killed)",
    )
    parser.add_argument(
        "--preempt-policy",
        choices=PREEMPT_POLICIES,
        default="fail",
        help="what happens to a block killed at its deadline (default: fail)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, help="extra attempts for failing blocks"
    )
    parser.add_argument(
        "--save-weights",
        default=None,
        help=(
            "also write the stitched weight matrix here (.npy; a sparse "
            "solver's CSR result is written with scipy.sparse.save_npz as "
            ".npz instead — never densified)"
        ),
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here (default: stdout)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary"
    )
    _add_obs_arguments(parser)
    return parser


def load_sample_matrix(source: str) -> np.ndarray:
    """Load the shard subcommand's ``n × d`` sample matrix from disk."""
    path = Path(source)
    if not path.exists():
        raise ValidationError(f"data file not found: {source}")
    try:
        if path.suffix == ".npy":
            matrix = np.load(path)
        else:
            matrix = np.loadtxt(path, delimiter=",", ndmin=2)
    except (OSError, ValueError) as exc:
        raise ValidationError(f"cannot read sample matrix from {source}: {exc}") from exc
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(
            f"sample matrix must be 2-D, got shape {matrix.shape}"
        )
    return matrix


def shard_main(argv: Sequence[str] | None = None) -> int:
    """Run the ``shard`` subcommand; returns the process exit code."""
    from repro.shard import ShardExecutor, ShardPlanner

    parser = build_shard_parser()
    args = parser.parse_args(argv)

    try:
        if args.solver not in solver_names():
            raise ValidationError(
                f"unknown solver {args.solver!r}; "
                f"available: {', '.join(solver_names())}"
            )
        data = load_sample_matrix(args.data)
        config = json.loads(args.config) if args.config else {}
        if not isinstance(config, dict):
            raise ValidationError("--config must be a JSON object")
        planner = ShardPlanner(
            skeleton_threshold=args.skeleton_threshold,
            max_block_size=args.max_block_size,
            min_block_size=args.min_block_size,
            halo_depth=args.halo_depth,
            max_halo_size=args.max_halo_size,
            partition_columns=args.partition_columns,
        )
        tracer = _build_tracer(args)
        executor = ShardExecutor(
            solver=args.solver,
            config=config,
            n_workers=args.workers,
            timeout=args.timeout,
            preempt_policy=args.preempt_policy,
            max_retries=args.max_retries,
            edge_threshold=args.edge_threshold,
            wave_blocks=args.wave_blocks,
            boundary_rounds=args.boundary_rounds,
            tracer=tracer,
        )
    except (ValidationError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if planner.partition_columns is not None:
            # Overlapped plan/execute: partitions are planned and their wave
            # jobs submitted on one stream session, so no global skeleton is
            # ever built.
            result = executor.run_stream(data, planner, seed=args.seed)
        else:
            plan = planner.plan(data, tracer=tracer)
            result = executor.run(data, plan, seed=args.seed, planner=planner)
    except ValidationError as exc:  # e.g. an unknown --solver name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        _write_obs_outputs(tracer, args)

    serialized = json.dumps(result.report(), indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(serialized + "\n")
    else:
        print(serialized)
    if args.save_weights:
        import scipy.sparse as sp

        if sp.issparse(result.weights):
            target = Path(args.save_weights)
            if target.suffix != ".npz":
                # save_npz would append the suffix silently; make the actual
                # output path explicit so downstream tooling can find it.
                target = Path(str(target) + ".npz")
                print(
                    f"sparse stitched weights written to {target} "
                    "(CSR results are saved as .npz, never densified)",
                    file=sys.stderr,
                )
            sp.save_npz(target, result.weights.tocsr())
        else:
            np.save(args.save_weights, result.weights)

    if not args.quiet:
        summary = result.plan.summary()
        stitch = result.stitched.report
        waves = f", {result.n_waves} waves" if result.n_waves else ""
        rounds = f", {len(result.rounds)} re-solve rounds" if result.rounds else ""
        print(
            f"{summary['n_blocks']} blocks over {summary['n_nodes']} nodes: "
            f"{result.n_blocks_ok} ok, {result.n_blocks_failed} failed, "
            f"{result.n_blocks_preempted} preempted{waves}{rounds} | "
            f"{stitch.n_edges} stitched edges "
            f"({stitch.n_duplicate_edges} dups, "
            f"{stitch.n_direction_conflicts} direction conflicts, "
            f"{stitch.n_cycle_edges_removed} cycle edges removed) | "
            f"{result.total_seconds:.2f}s wall ({args.workers} workers)",
            file=sys.stderr,
        )

    return 0 if result.complete else 1


def build_daemon_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``repro-serve daemon`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-serve daemon",
        description=(
            "Serve jobs from a spool directory on a persistent worker pool: "
            "clients drop NDJSON submission files into <spool>/incoming and "
            "read per-file NDJSON result streams from <spool>/results. "
            "Touch <spool>/stop (or send SIGTERM) to drain and exit."
        ),
    )
    parser.add_argument(
        "spool", help="spool directory (incoming/work/results created if missing)"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="size of the resident worker pool"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="hard per-job deadline in seconds (overrunning workers are killed)",
    )
    parser.add_argument(
        "--soft-timeout",
        type=float,
        default=None,
        help=(
            "cooperative deadline in seconds (<= --timeout): ask the solver "
            "to stop at the next outer-iteration boundary before the SIGKILL "
            "tier fires"
        ),
    )
    parser.add_argument(
        "--preempt-policy",
        choices=PREEMPT_POLICIES,
        default="fail",
        help="what happens to a job killed at its deadline (default: fail)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, help="extra attempts for failing jobs"
    )
    parser.add_argument(
        "--max-jobs-per-worker",
        type=int,
        default=None,
        help="recycle a pool worker after this many jobs (default: never)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission bound: queued jobs past this are rejected (queue full)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        help="idle sleep between spool scans, in seconds",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result cache (created if missing)",
    )
    _add_obs_arguments(parser)
    return parser


def daemon_main(argv: Sequence[str] | None = None) -> int:
    """Run the ``daemon`` subcommand; returns the process exit code.

    Blocks until a stop is requested — ``SIGTERM``/``SIGINT`` and the
    ``<spool>/stop`` sentinel all trigger the same cooperative shutdown:
    intake closes, accepted jobs drain, the pool exits cleanly.
    """
    import signal
    import threading

    from repro.serve.daemon import ServeDaemon

    parser = build_daemon_parser()
    args = parser.parse_args(argv)
    try:
        cache = DiskCache(args.cache_dir) if args.cache_dir else None
        runner = StreamingRunner(
            n_workers=args.workers,
            cache=cache,
            timeout=args.timeout,
            max_retries=args.max_retries,
            preempt_policy=args.preempt_policy,
            tracer=_build_tracer(args),
            soft_timeout=args.soft_timeout,
            max_jobs_per_worker=args.max_jobs_per_worker,
        )
        daemon = ServeDaemon(
            runner,
            args.spool,
            max_pending=args.max_pending,
            poll_interval=args.poll_interval,
        )
    except (ValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _handle_stop(signum, frame):  # pragma: no cover - signal path
        daemon.request_stop()

    previous = {}
    if threading.current_thread() is threading.main_thread():
        # Signal handlers can only be installed from the main thread; test
        # harnesses driving the CLI on a worker thread stop via the sentinel.
        previous = {
            sig: signal.signal(sig, _handle_stop)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
    try:
        daemon.run()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        _write_obs_outputs(runner.tracer, args)
    print(
        f"daemon drained: {daemon.n_accepted} accepted, "
        f"{daemon.n_completed} completed, {daemon.n_rejected} rejected",
        file=sys.stderr,
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns the process exit code (see module docstring)."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "shard":
        return shard_main(argv[1:])
    if argv and argv[0] == "daemon":
        return daemon_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        jobs = load_manifest(args.manifest)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        cache = (
            DiskCache(
                args.cache_dir,
                max_entries=args.cache_max_entries,
                max_bytes=args.cache_max_bytes,
            )
            if args.cache_dir
            else None
        )
        runner = StreamingRunner(
            n_workers=args.workers,
            cache=cache,
            timeout=args.timeout,
            max_retries=args.max_retries,
            preempt_policy=args.preempt_policy,
            soft_timeout=args.soft_timeout,
            max_jobs_per_worker=args.max_jobs_per_worker,
            tracer=_build_tracer(args),
        )
    except (ValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = runner.run(jobs, on_result=_emit_ndjson if args.stream else None)
    finally:
        _write_obs_outputs(runner.tracer, args)

    if args.output or not args.stream:
        payload = {
            "summary": report.summary(),
            "jobs": [result.summary() for result in report.results],
        }
        serialized = json.dumps(payload, indent=2, sort_keys=True)
        if args.output:
            Path(args.output).write_text(serialized + "\n")
        else:
            print(serialized)

    if not args.quiet:
        summary = report.summary()
        print(
            f"{summary['n_jobs']} jobs: {summary['n_ok']} ok, "
            f"{summary['n_failed']} failed, {summary['n_preempted']} preempted, "
            f"{summary['n_cache_hits']} cache hits | "
            f"{summary['total_seconds']:.2f}s wall, "
            f"first result after {summary['time_to_first_result'] or 0.0:.2f}s, "
            f"{summary['jobs_per_second']:.2f} jobs/s "
            f"({summary['n_workers']} workers)",
            file=sys.stderr,
        )
        if cache is not None:
            print(_cache_summary_line(summary["cache_stats"]), file=sys.stderr)
        if runner.tracer is not None:
            latency = _latency_summary_line(runner.tracer.metrics)
            if latency is not None:
                print(latency, file=sys.stderr)

    return 0 if report.n_failed + report.n_timeout == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
