"""Streaming, preemptible execution engine for the serving layer.

:class:`StreamingRunner` is the execution core behind
:class:`~repro.serve.runner.BatchRunner`: it runs every
:class:`~repro.serve.job.LearningJob` on a persistent pre-forked worker pool
(:class:`~repro.serve.pool.WorkerPool`) and *streams*
:class:`~repro.serve.job.JobResult` records back the moment each job
finishes, instead of blocking until the whole manifest is done.  That is the
shape the paper's deployment needs — ~100k tasks per day, where downstream
consumers (dashboards, alerting, the re-learn loop) want each scenario's graph
as soon as it exists, and one runaway solve must never stall the fleet.

Execution model
---------------
Workers are started once (lazily, up to ``n_workers``) and live across jobs:
the registry snapshot, interpreter boot, and numpy import are paid per
*worker*, not per *job*.  A worker is replaced only after a preemption kill
or — with ``max_jobs_per_worker`` set — after that many completed jobs
(``1`` reproduces the old disposable-process-per-job engine).

Deadlines are enforced in two tiers:

* **soft** (``soft_timeout``, cooperative): past it, the solve stops at the
  next outer-iteration boundary via the backend protocol's
  ``deadline_hooks`` and the job is reported ``"preempted"`` — the worker
  survives and stays in the pool;
* **hard** (``timeout``, SIGKILL): the parent kills a worker still alive
  past the deadline — and kills *only that worker*; each worker additionally
  arms a per-job *suicide timer* (``SIGALRM`` at its default disposition)
  slightly past the parent's deadline, so a worker orphaned by a dead parent
  still kills itself.  A hard-killed job is either failed immediately or
  requeued for a fresh attempt, per :attr:`StreamingRunner.preempt_policy`.

Jobs with no deadline and ``n_workers=1`` are executed inline in the parent
(no fork, no pickling) — the cheap path for small serial manifests.  The
soft-deadline tier works inline too (it is purely cooperative).

For incremental intake (the ``repro-serve daemon`` mode) use
:meth:`StreamingRunner.open_session`: the returned :class:`StreamSession`
accepts submissions one at a time and hands back results as they complete,
over the same pool.

Environment knobs (also honored by the tier-1 test-suite):

``REPRO_SERVE_START_METHOD``
    Override the :mod:`multiprocessing` start method (``fork`` / ``spawn`` /
    ``forkserver``).  Default: the platform default.
``REPRO_SERVE_KILL_GRACE``
    Seconds of grace between the parent's deadline check and the worker's
    suicide timer (default ``0.5``).
``REPRO_SERVE_POLL_INTERVAL``
    Upper bound on the parent's poll sleep in seconds (default ``0.05``).
"""

from __future__ import annotations

import copy
import os
import pickle
import shutil
import tempfile
import time
from collections import deque
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.obs import ResourceSampler, Tracer, activated
from repro.serve.cache import ResultCache, job_fingerprint
from repro.serve.job import JobResult, LearningJob
from repro.serve.pool import (
    PREEMPT_POLICIES,
    PoolJob,
    SoftDeadlineExceeded,
    StreamTelemetry,
    WorkerPool,
    _arm_suicide_timer,
    _execute_with_retry,
    _mp_context,
    _suicide_exit,
    _terminate,
)

__all__ = [
    "PreemptedError",
    "WorkerCrashError",
    "SoftDeadlineExceeded",
    "StreamTelemetry",
    "StreamSession",
    "StreamingRunner",
    "call_with_deadline",
]


class PreemptedError(RuntimeError):
    """Raised by :func:`call_with_deadline` when the worker was killed on deadline."""


class WorkerCrashError(RuntimeError):
    """Raised when a worker process died without producing a result or error."""


def _call_worker(conn, deadline: float | None, fn, args, kwargs) -> None:
    """Worker entry point for :func:`call_with_deadline`."""
    _arm_suicide_timer(deadline)
    try:
        value = fn(*args, **kwargs)
        payload = ("ok", value)
    except BaseException as exc:  # noqa: BLE001 - shipped back to the parent
        payload = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    finally:
        conn.close()


def call_with_deadline(
    fn: Callable[..., Any],
    *args: Any,
    deadline: float | None = None,
    **kwargs: Any,
) -> Any:
    """Run ``fn(*args, **kwargs)`` in a disposable worker, SIGKILLed on deadline.

    This is the single-call face of the preemption machinery, used by
    :class:`~repro.serve.scheduler.RelearnScheduler` to bound one window solve.
    The callable, its arguments, and its return value must be picklable under
    the active start method (under the default ``fork`` they are simply
    inherited).

    Parameters
    ----------
    fn:
        The callable to execute.
    deadline:
        Seconds the call may run.  ``None`` runs ``fn`` inline with no worker
        process and no preemption.

    Returns
    -------
    Any
        Whatever ``fn`` returned.

    Raises
    ------
    PreemptedError
        The deadline elapsed and the worker was killed.
    WorkerCrashError
        The worker died without reporting a result (e.g. a segfault).
    RuntimeError
        ``fn`` raised; the original exception type and message are preserved
        in the error text.
    """
    if deadline is None:
        return fn(*args, **kwargs)
    if deadline <= 0:
        raise ValidationError(f"deadline must be positive, got {deadline}")

    context = _mp_context()
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_call_worker,
        args=(child_conn, deadline, fn, args, kwargs),
        daemon=True,
    )
    process.start()
    child_conn.close()
    deadline_at = time.monotonic() + deadline
    try:
        while True:
            remaining = deadline_at - time.monotonic()
            if parent_conn.poll(max(remaining, 0.0)):
                try:
                    kind, value = parent_conn.recv()
                except (EOFError, OSError, pickle.UnpicklingError):
                    process.join(timeout=5.0)
                    raise WorkerCrashError(
                        "worker died while sending its result "
                        f"(exit code {process.exitcode})"
                    ) from None
                process.join(timeout=5.0)
                if kind == "ok":
                    return value
                raise RuntimeError(value)
            # Deadline elapsed with no message seen by the timed poll.  A
            # result that landed in the race window between that poll and now
            # is preferred over killing/condemning the worker.
            if parent_conn.poll(0):
                continue
            if process.is_alive():
                _terminate(process)
                raise PreemptedError(
                    f"call exceeded the {deadline:.3f}s deadline and was killed"
                )
            process.join(timeout=5.0)
            if _suicide_exit(process.exitcode):
                raise PreemptedError(
                    f"worker killed itself at the {deadline:.3f}s deadline "
                    f"(exit code {process.exitcode})"
                )
            raise WorkerCrashError(
                f"worker died without a result (exit code {process.exitcode})"
            )
    finally:
        parent_conn.close()
        if process.is_alive():  # pragma: no cover - defensive
            _terminate(process)


# -- the streaming engine ------------------------------------------------------


class StreamSession:
    """Incremental submit/poll face of a :class:`StreamingRunner` pass.

    A session owns one :class:`~repro.serve.pool.WorkerPool` and layers the
    runner's parent-side responsibilities on top: dataset materialization,
    cache lookups and write-backs, job lifecycle spans, and telemetry.  The
    runner's own :meth:`StreamingRunner.stream` drives a session under the
    hood; the ``repro-serve daemon`` drives one directly, submitting jobs as
    they arrive in the spool and collecting results as each finishes.

    Obtain sessions from :meth:`StreamingRunner.open_session` (constructing
    one directly skips the runner's sampler/spool setup); always
    :meth:`close` them — ``close()`` stops idle workers gracefully, SIGKILLs
    busy ones without touching the preemption telemetry, and releases the
    trace spool directory.
    """

    def __init__(self, runner: "StreamingRunner") -> None:
        self._runner = runner
        self.started = time.monotonic()
        self.pool = WorkerPool(
            runner.n_workers,
            timeout=runner.timeout,
            soft_timeout=runner.soft_timeout,
            max_retries=runner.max_retries,
            preempt_policy=runner.preempt_policy,
            preempt_retries=runner.preempt_retries,
            max_jobs_per_worker=runner.max_jobs_per_worker,
            tracer=runner.tracer,
            sampler=runner.sampler,
            telemetry=runner.telemetry,
            spool_dir=runner._spool_dir,
        )
        self._closed = False

    @property
    def in_flight(self) -> int:
        """Jobs submitted and not yet completed (queued + executing)."""
        return self.pool.in_flight

    def has_capacity(self) -> bool:
        """Whether another submission would find a worker without queuing deep.

        The session admits up to ``n_workers`` jobs in flight; callers that
        respect this keep the pool's internal queue empty, so queue waits are
        measured where the backlog actually is (the caller's queue — the
        runner's manifest deque, the daemon's tenant queues).
        """
        return self.pool.in_flight < self._runner.n_workers

    def submit(
        self,
        job: LearningJob,
        tag: Any = None,
        enqueued_at: float | None = None,
    ) -> JobResult | None:
        """Submit one job; returns its result only when it finished instantly.

        Instant outcomes are cache hits and materialization failures — both
        are finalized (spans ended, telemetry counted) before being returned.
        Otherwise ``None`` is returned and the result will surface from a
        later :meth:`poll`.  ``enqueued_at`` backdates the job's queue-wait
        accounting to when the caller accepted it.
        """
        item = PoolJob(
            job=job,
            tag=tag,
            enqueued_at=enqueued_at if enqueued_at is not None else time.monotonic(),
        )
        return self.submit_item(item)

    def submit_item(self, item: PoolJob) -> JobResult | None:
        """Submit a pre-built :class:`~repro.serve.pool.PoolJob` (runner path)."""
        runner = self._runner
        runner._start_job_trace(item)
        immediate = runner._prepare(item)
        if immediate is not None:
            return self.finish(item, immediate)
        if item.job.data is not None:
            # The materialized matrix travels as the explicit `data` payload;
            # don't ship a second copy inside the job spec.
            item.job = copy.copy(item.job)
            item.job.data = None
        self.pool.submit(item)
        return None

    def poll(self, timeout: float | None = None) -> list[tuple[PoolJob, JobResult]]:
        """Advance the pool; return finalized ``(item, result)`` completions."""
        return [
            (item, self.finish(item, result))
            for item, result in self.pool.poll(timeout)
        ]

    def finish(self, item: PoolJob, result: JobResult) -> JobResult:
        """Finalize one result: cache write-back, span end, telemetry."""
        runner = self._runner
        return runner._finalize(item, result, self.started)

    def close(self) -> None:
        """Shut the pool down and release the session's resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.pool.close()
        self._runner.telemetry.total_seconds = time.monotonic() - self.started
        self._runner._teardown_session()


class StreamingRunner:
    """Execute jobs on a persistent worker pool, yielding results as they complete.

    This is the engine underneath :class:`~repro.serve.runner.BatchRunner`;
    use it directly when results should be consumed the moment they exist
    (NDJSON streaming, dashboards, pipelining into downstream work).

    Parameters
    ----------
    n_workers:
        Maximum number of concurrently live worker processes.  ``1`` with no
        ``timeout`` executes jobs inline in the parent (no subprocess).
    cache:
        Optional :class:`~repro.serve.cache.ResultCache`.  Hits are yielded
        immediately without a worker; successful misses are written back.
    timeout:
        Hard per-job deadline in seconds, measured from dispatch to a ready
        worker.  A job still running this long is SIGKILLed and reported
        ``"preempted"``.  ``None`` disables hard preemption.
    soft_timeout:
        Cooperative deadline in seconds: past it, the solve stops at the
        next outer-iteration boundary (via the backend protocol's
        ``deadline_hooks``) and is reported ``"preempted"`` without killing
        the worker.  Works inline too.  Must not exceed ``timeout`` when
        both are set.
    max_retries:
        Additional attempts for failing dataset builds and solver runs
        (retries happen inside the worker, within the same deadline).
    preempt_policy:
        ``"fail"`` (default) reports a hard-killed job as ``"preempted"``
        immediately; ``"requeue"`` grants it up to ``preempt_retries`` fresh
        attempts (each with a full deadline) before giving up.  Soft stops
        are final under either policy.
    preempt_retries:
        Fresh attempts granted to a hard-preempted job under the
        ``"requeue"`` policy.
    max_jobs_per_worker:
        Completed jobs after which a pool worker is retired and replaced
        (``None``, the default, disables recycling; ``1`` reproduces the old
        disposable-process-per-job engine).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When set, every job gets a
        lifecycle span tree (``queue_wait`` → ``job_dispatch`` →
        ``data_materialize`` → ``solve``/``outer_iter`` → ``cache_store``),
        worker-side spans are spooled to NDJSON and merged into the parent
        trace (orphans adopted if the worker died mid-flush), pool health
        appears as ``worker_spawn``/``worker_idle`` spans and
        ``serve_pool_*`` gauges, and preemption/requeue/cache counters are
        folded into ``tracer.metrics``.
    sample_resources:
        Whether to run a :class:`~repro.obs.ResourceSampler` alongside the
        stream, emitting periodic ``resource`` events (RSS/CPU for the parent
        and each live worker) into the tracer's sink and stamping
        ``worker_peak_rss_bytes`` attributes onto each job span.  ``None``
        (default) auto-enables whenever a tracer is set and the platform
        supports ``/proc`` sampling; ``False`` forces it off, ``True``
        requests it (still a no-op off Linux or under ``REPRO_OBS_SAMPLE=0``).
        Sampling without a tracer has nowhere to put events, so it stays off.

    Examples
    --------
    >>> from repro.serve import LearningJob, StreamingRunner
    >>> jobs = [LearningJob(dataset="er2", seed=s, dataset_options={"n_nodes": 12},
    ...                     config={"max_outer_iterations": 2,
    ...                             "max_inner_iterations": 20})
    ...         for s in range(3)]
    >>> for result in StreamingRunner(n_workers=2).stream(jobs):
    ...     _ = result.status  # arrives the moment each job finishes
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        max_retries: int = 0,
        preempt_policy: str = "fail",
        preempt_retries: int = 1,
        tracer: Tracer | None = None,
        sample_resources: bool | None = None,
        soft_timeout: float | None = None,
        max_jobs_per_worker: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if timeout is not None and timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        if soft_timeout is not None and soft_timeout <= 0:
            raise ValidationError(
                f"soft_timeout must be positive, got {soft_timeout}"
            )
        if timeout is not None and soft_timeout is not None and soft_timeout > timeout:
            raise ValidationError(
                f"soft_timeout ({soft_timeout}) must not exceed the hard "
                f"timeout ({timeout})"
            )
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if preempt_policy not in PREEMPT_POLICIES:
            raise ValidationError(
                f"preempt_policy must be one of {PREEMPT_POLICIES}, "
                f"got {preempt_policy!r}"
            )
        if preempt_retries < 0:
            raise ValidationError(
                f"preempt_retries must be >= 0, got {preempt_retries}"
            )
        if max_jobs_per_worker is not None and max_jobs_per_worker < 1:
            raise ValidationError(
                f"max_jobs_per_worker must be >= 1, got {max_jobs_per_worker}"
            )
        self.n_workers = int(n_workers)
        self.cache = cache
        self.timeout = timeout
        self.soft_timeout = soft_timeout
        self.max_retries = int(max_retries)
        self.preempt_policy = preempt_policy
        self.preempt_retries = int(preempt_retries)
        self.max_jobs_per_worker = (
            int(max_jobs_per_worker) if max_jobs_per_worker is not None else None
        )
        self.tracer = tracer
        self.sample_resources = sample_resources
        self.sampler: ResourceSampler | None = None
        self.telemetry = StreamTelemetry()
        self.solver_seconds_saved = 0.0
        self._spool_dir: str | None = None

    # -- public API ------------------------------------------------------------

    def stream(self, jobs: Sequence[LearningJob]) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per job, in completion order.

        Telemetry for the pass is left on :attr:`telemetry` (and
        :attr:`solver_seconds_saved`) after the generator is exhausted.
        """
        for _, result in self._stream(jobs):
            yield result

    def run(self, jobs, on_result: Callable[[JobResult], None] | None = None):
        """Drain the stream into a :class:`~repro.serve.runner.BatchReport`.

        ``report.results`` is in manifest order regardless of completion
        order.  ``on_result`` (when given) is invoked once per result in
        completion order — this is how the CLI's ``--stream`` mode emits
        NDJSON lines while still producing the final report.

        Returns
        -------
        BatchReport
            Results plus aggregate throughput, cache, and preemption
            telemetry.
        """
        from repro.serve.runner import BatchReport

        jobs = list(jobs)
        slots: list[JobResult | None] = [None] * len(jobs)
        for index, result in self._stream(jobs):
            slots[index] = result
            if on_result is not None:
                on_result(result)
        results = [slot for slot in slots if slot is not None]
        return BatchReport(
            results=results,
            total_seconds=self.telemetry.total_seconds,
            n_workers=self.n_workers,
            solver_seconds_saved=self.solver_seconds_saved,
            cache_stats=self.cache.stats() if self.cache is not None else {},
            time_to_first_result=self.telemetry.time_to_first_result,
            preemption_stats=self.telemetry.preemption_summary(),
        )

    def open_session(self) -> StreamSession:
        """Begin an incremental pass and return its :class:`StreamSession`.

        Resets the pass telemetry, starts resource sampling (when enabled),
        creates the worker trace-spool directory (when tracing), and builds
        the worker pool.  The caller owns the session and must
        :meth:`StreamSession.close` it; the daemon holds one session open
        for its whole life.
        """
        self.telemetry = StreamTelemetry()
        self.solver_seconds_saved = 0.0
        self._setup_sampler()
        if self.tracer is not None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-trace-")
        return StreamSession(self)

    # -- internals --------------------------------------------------------------

    def _stream(self, jobs: Sequence[LearningJob]) -> Iterator[tuple[Any, JobResult]]:
        """Yield ``(manifest index, result)`` pairs in completion order."""
        jobs = list(jobs)
        for index, job in enumerate(jobs):
            if job.job_id is None:
                job.job_id = f"job-{index:03d}"
        if self.n_workers == 1 and self.timeout is None:
            yield from self._stream_inline(jobs)
            return
        session = self.open_session()
        pending: deque[PoolJob] = deque(
            PoolJob(job=job, tag=index, enqueued_at=session.started)
            for index, job in enumerate(jobs)
        )
        try:
            while pending or session.in_flight:
                # Fill free capacity; immediate outcomes (materialization
                # failures, cache hits) yield right away.
                while pending and session.has_capacity():
                    item = pending.popleft()
                    immediate = session.submit_item(item)
                    if immediate is not None:
                        yield item.tag, immediate
                if session.in_flight:
                    for item, result in session.poll():
                        yield item.tag, result
        finally:
            session.close()

    def _stream_inline(self, jobs: list[LearningJob]) -> Iterator[tuple[Any, JobResult]]:
        """Serial no-subprocess path for ``n_workers=1`` without a hard deadline."""
        self.telemetry = StreamTelemetry()
        self.solver_seconds_saved = 0.0
        started = time.monotonic()
        self._setup_sampler()
        try:
            for index, job in enumerate(jobs):
                item = PoolJob(job=job, tag=index, enqueued_at=started)
                self._start_job_trace(item)
                result = self._prepare(item)
                if result is None:
                    result = self._run_inline(item)
                yield item.tag, self._finalize(item, result, started)
        finally:
            self._teardown_session()
            self.telemetry.total_seconds = time.monotonic() - started

    def _setup_sampler(self) -> None:
        """Start the resource sampler for one pass (when enabled and supported)."""
        self.sampler = None
        want_sampling = (
            self.sample_resources
            if self.sample_resources is not None
            else self.tracer is not None
        )
        if want_sampling and self.tracer is not None:
            sampler = ResourceSampler(sink=self.tracer.sink)
            if sampler.start():  # no-op (False) off Linux / REPRO_OBS_SAMPLE=0
                sampler.track(os.getpid(), role="parent")
                self.sampler = sampler

    def _teardown_session(self) -> None:
        """Stop sampling and drop the spool directory at the end of a pass."""
        if self.sampler is not None:
            self.sampler.stop()
            parent_peak = self.sampler.peak_rss_bytes(os.getpid())
            if self.tracer is not None and parent_peak > 0:
                self.tracer.metrics.gauge(
                    "serve_peak_rss_bytes", role="parent"
                ).set(parent_peak)
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None

    def _finalize(self, item: PoolJob, result: JobResult, started: float) -> JobResult:
        """Cache write-back, span end, and telemetry for one finished job."""
        now = time.monotonic() - started
        if self.telemetry.time_to_first_result is None:
            self.telemetry.time_to_first_result = now
        self.telemetry.total_seconds = now
        self.telemetry.n_yielded += 1
        store = (
            self.cache is not None
            and result.status == "ok"
            and not result.cache_hit  # hits must not overwrite the entry
            and result.fingerprint is not None
        )
        if store and self.tracer is not None and item.span is not None:
            with self.tracer.span("cache_store", parent=item.span):
                self.cache.put(result.fingerprint, result)
        elif store:
            self.cache.put(result.fingerprint, result)
        if self.tracer is not None:
            self.tracer.metrics.counter(
                "serve_jobs_total", status=result.status
            ).inc()
            if item.span is not None:
                item.span.set_attributes(
                    attempts=result.attempts, cache_hit=result.cache_hit
                )
                item.span.end("ok" if result.status == "ok" else result.status)
                self.tracer.metrics.histogram("serve_job_seconds").observe(
                    item.span.duration
                )
        return result

    def _start_job_trace(self, item: PoolJob) -> None:
        """Open the job span and record the first attempt's queue wait.

        The job span is backdated to the enqueue time so its duration covers
        the whole lifecycle.  Requeued attempts record their ``queue_wait``
        at dispatch time inside the pool instead — together the attempts'
        waits and ``job_attempt`` spans tile the job span.
        """
        if self.tracer is None:
            return
        now = time.monotonic()
        if item.span is None:
            item.span = self.tracer.span(
                "job", job_id=item.job.job_id, solver=item.job.solver
            )
            item.span.start = item.enqueued_at
        waited = max(now - item.enqueued_at, 0.0)
        self.tracer.record_span(
            "queue_wait",
            start=item.enqueued_at,
            duration=waited,
            parent=item.span,
            attempt=item.preempt_attempts,
        )
        self.tracer.metrics.histogram("serve_queue_wait_seconds").observe(waited)

    def _prepare(self, item: PoolJob) -> JobResult | None:
        """Materialize data and consult the cache; a result short-circuits."""
        job = item.job
        if item.data is None:
            span = (
                self.tracer.span("data_materialize", parent=item.span)
                if self.tracer is not None
                else None
            )
            data, error, used_attempts = self._materialize(job)
            if span is not None:
                span.set_attribute("attempts", used_attempts)
                span.end("ok" if data is not None else "error")
            if data is None:
                return JobResult(
                    job_id=job.job_id,
                    solver=job.solver,
                    status="failed",
                    attempts=used_attempts,
                    error=error,
                )
            item.data = data
            item.base_attempts = used_attempts - 1
            if self.cache is not None:
                item.fingerprint = job_fingerprint(job, data)
                cached = self.cache.get(item.fingerprint)
                if cached is not None and cached.status == "ok":
                    self.solver_seconds_saved += cached.elapsed_seconds
                    if self.tracer is not None:
                        self.tracer.metrics.counter("serve_cache_hits_total").inc()
                    return cached.as_cache_hit(job_id=job.job_id)
        return None

    def _materialize(self, job: LearningJob) -> tuple[np.ndarray | None, str | None, int]:
        """Resolve the job's data with retries; returns (data, error, attempts)."""
        error = None
        for attempt in range(1, self.max_retries + 2):
            try:
                return job.resolve_data(), None, attempt
            except Exception as exc:  # noqa: BLE001 - failures become job status
                error = f"{type(exc).__name__}: {exc}"
        return None, error, self.max_retries + 1

    def _run_inline(self, item: PoolJob) -> JobResult:
        """Execute one job in the parent process (serial, no-hard-deadline path)."""
        soft_deadline_at = (
            time.monotonic() + self.soft_timeout
            if self.soft_timeout is not None
            else None
        )
        if self.tracer is None:
            result = _execute_with_retry(
                item.job,
                item.data,
                item.fingerprint,
                self.max_retries,
                item.base_attempts,
                soft_deadline_at=soft_deadline_at,
                soft_timeout=self.soft_timeout,
            )
        else:
            # No subprocess means no spool: the solve spans of execute_job
            # land directly in the parent sink, parented under the job span.
            with activated(self.tracer), self.tracer.use_parent(item.span):
                result = _execute_with_retry(
                    item.job,
                    item.data,
                    item.fingerprint,
                    self.max_retries,
                    item.base_attempts,
                    soft_deadline_at=soft_deadline_at,
                    soft_timeout=self.soft_timeout,
                )
        if result.status == "preempted":
            self.telemetry.n_soft_preempted += 1
            if self.tracer is not None:
                self.tracer.metrics.counter(
                    "serve_preemptions_total", kind="soft"
                ).inc()
        return result
