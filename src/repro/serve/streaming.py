"""Streaming, preemptible execution engine for the serving layer.

:class:`StreamingRunner` is the execution core behind
:class:`~repro.serve.runner.BatchRunner`: it runs every
:class:`~repro.serve.job.LearningJob` in a disposable worker process and
*streams* :class:`~repro.serve.job.JobResult` records back the moment each job
finishes, instead of blocking until the whole manifest is done.  That is the
shape the paper's deployment needs — ~100k tasks per day, where downstream
consumers (dashboards, alerting, the re-learn loop) want each scenario's graph
as soon as it exists, and one runaway solve must never stall the fleet.

Preemption model
----------------
Deadlines are enforced with *hard* preemption, replacing the cooperative
timeouts of the original runner:

* every deadline-bound job runs in its own worker process (one process per
  job, so killing one job can never poison a shared pool);
* the parent polls the workers and sends ``SIGKILL`` to any worker still
  alive past its deadline — a solver stuck in a C loop is killed all the
  same;
* each worker additionally arms a *suicide timer*
  (``signal.setitimer(ITIMER_REAL, ...)`` with ``SIGALRM`` left at its
  default, process-terminating disposition) slightly after the parent's
  deadline, so a worker orphaned by a dead parent still kills itself;
* a killed job is recorded with the ``"preempted"`` status and, depending on
  :attr:`StreamingRunner.preempt_policy`, is either failed immediately or
  requeued for a fresh attempt with a fresh deadline.

Jobs with no deadline and ``n_workers=1`` are executed inline in the parent
(no fork, no pickling) — the cheap path for small serial manifests.

Environment knobs (also honored by the tier-1 test-suite):

``REPRO_SERVE_START_METHOD``
    Override the :mod:`multiprocessing` start method (``fork`` / ``spawn`` /
    ``forkserver``).  Default: the platform default.
``REPRO_SERVE_KILL_GRACE``
    Seconds of grace between the parent's deadline check and the worker's
    suicide timer (default ``0.5``).
``REPRO_SERVE_POLL_INTERVAL``
    Upper bound on the parent's poll sleep in seconds (default ``0.05``).
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
import pickle
import shutil
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

import repro.core.backend as backend_module
from repro.exceptions import ValidationError
from repro.obs import NDJSONFileSink, ResourceSampler, Span, Tracer, activated, merge_spool
from repro.serve.cache import ResultCache, job_fingerprint
from repro.serve.job import JobResult, LearningJob, execute_job

__all__ = [
    "PreemptedError",
    "WorkerCrashError",
    "StreamTelemetry",
    "StreamingRunner",
    "call_with_deadline",
]

#: Allowed values of :attr:`StreamingRunner.preempt_policy`.
PREEMPT_POLICIES: tuple[str, ...] = ("fail", "requeue")


def _kill_grace() -> float:
    """Grace period between parent kill and worker suicide timer (seconds)."""
    return float(os.environ.get("REPRO_SERVE_KILL_GRACE", "0.5"))


def _poll_interval() -> float:
    """Upper bound on the parent's poll sleep (seconds)."""
    return float(os.environ.get("REPRO_SERVE_POLL_INTERVAL", "0.05"))


def _mp_context() -> mp.context.BaseContext:
    """The multiprocessing context honoring ``REPRO_SERVE_START_METHOD``."""
    method = os.environ.get("REPRO_SERVE_START_METHOD") or None
    return mp.get_context(method)


class PreemptedError(RuntimeError):
    """Raised by :func:`call_with_deadline` when the worker was killed on deadline."""


class WorkerCrashError(RuntimeError):
    """Raised when a worker process died without producing a result or error."""


# -- worker-side code ----------------------------------------------------------


def _arm_suicide_timer(deadline: float | None) -> None:
    """Arm the worker's own kill switch slightly past the parent's deadline.

    ``SIGALRM`` is deliberately left at its *default* disposition: the kernel
    terminates the process when the timer fires even if the interpreter is
    stuck inside a C extension and would never run a Python handler.  The
    parent's ``SIGKILL`` remains the primary enforcement; the suicide timer
    only matters when the parent itself died and can no longer clean up.
    """
    if deadline is None:
        return
    if not (hasattr(signal, "setitimer") and hasattr(signal, "SIGALRM")):
        return  # pragma: no cover - non-POSIX platforms
    signal.signal(signal.SIGALRM, signal.SIG_DFL)
    signal.setitimer(signal.ITIMER_REAL, deadline + _kill_grace())


def _execute_with_retry(
    job: LearningJob,
    data: np.ndarray,
    fingerprint: str | None,
    max_retries: int,
    base_attempts: int,
) -> JobResult:
    """Run the solver for one job, retrying failures within the same worker.

    Parameters
    ----------
    job, data, fingerprint:
        The job spec, its materialized sample matrix, and its cache key.
    max_retries:
        Additional solver attempts granted after the first failure.
    base_attempts:
        Attempts already consumed in the parent (dataset materialization).

    Returns
    -------
    JobResult
        An ``"ok"`` result from the first successful attempt, or a
        ``"failed"`` result carrying the last error once the budget is spent.
    """
    last_error = "job was never attempted"
    attempts = base_attempts
    for _ in range(max_retries + 1):
        attempts += 1
        try:
            result = execute_job(job, data=data, fingerprint=fingerprint)
            result.attempts = attempts
            return result
        except Exception as exc:  # noqa: BLE001 - failures become job status
            last_error = f"{type(exc).__name__}: {exc}"
    return JobResult(
        job_id=job.job_id or job.describe(),
        solver=job.solver,
        status="failed",
        attempts=attempts,
        fingerprint=fingerprint,
        error=last_error,
    )


@dataclass
class _TraceSpec:
    """Tracing instructions shipped to a worker (picklable for spawn workers).

    The worker opens an :class:`~repro.obs.NDJSONFileSink` on ``spool_path``
    and parents its root ``worker`` span onto the parent-side job span, so
    the merged trace (:func:`repro.obs.merge_spool`) reads as one tree.
    """

    spool_path: str
    trace_id: str
    parent_span_id: str | None


def _job_worker(
    conn,
    deadline: float | None,
    job: LearningJob,
    data: np.ndarray,
    fingerprint: str | None,
    max_retries: int,
    base_attempts: int,
    solver_registry: dict,
    trace_spec: _TraceSpec | None = None,
) -> None:
    """Worker entry point: execute one job and send its result over ``conn``.

    The backend-registry snapshot replicates parent-side
    :func:`~repro.serve.job.register_solver` /
    :func:`repro.core.backend.register_backend` calls for
    ``spawn``/``forkserver`` workers (``fork`` workers inherit it anyway).

    With a ``trace_spec`` the worker spools its spans (a root ``worker`` span
    wrapping the ``solve``/``outer_iter`` spans of :func:`execute_job`) to
    NDJSON, flushed per line — a SIGKILL loses at most one in-flight line.
    The spool is closed *before* the result is sent so the parent never
    merges a half-written file for a job it already counted finished.
    """
    _arm_suicide_timer(deadline)
    backend_module.restore_registry(solver_registry)
    if trace_spec is None:
        result = _execute_with_retry(job, data, fingerprint, max_retries, base_attempts)
    else:
        tracer = Tracer(
            NDJSONFileSink(trace_spec.spool_path), trace_id=trace_spec.trace_id
        )
        try:
            with activated(tracer):
                with tracer.span(
                    "worker", parent=trace_spec.parent_span_id, pid=os.getpid()
                ):
                    result = _execute_with_retry(
                        job, data, fingerprint, max_retries, base_attempts
                    )
        finally:
            tracer.close()
    try:
        conn.send(result)
    finally:
        conn.close()


def _call_worker(conn, deadline: float | None, fn, args, kwargs) -> None:
    """Worker entry point for :func:`call_with_deadline`."""
    _arm_suicide_timer(deadline)
    try:
        value = fn(*args, **kwargs)
        payload = ("ok", value)
    except BaseException as exc:  # noqa: BLE001 - shipped back to the parent
        payload = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    finally:
        conn.close()


# -- parent-side primitives ----------------------------------------------------


def _terminate(process: mp.process.BaseProcess) -> None:
    """SIGKILL ``process`` and reap it (best effort, never raises)."""
    try:
        process.kill()
    except Exception:  # pragma: no cover - process already gone
        pass
    process.join(timeout=5.0)


def _suicide_exit(exitcode: int | None) -> bool:
    """True when the worker died from its own ``SIGALRM`` suicide timer.

    The parent's own deadline kills never reach the exit-code classifiers —
    the parent records them directly at the moment it sends the ``SIGKILL``.
    A ``-SIGKILL`` exit observed *here* therefore came from outside the
    engine (e.g. the kernel OOM killer) and is a crash, not a preemption;
    only the ``SIGALRM`` the worker armed itself counts as a deadline death.
    """
    if exitcode is None:
        return False
    return hasattr(signal, "SIGALRM") and exitcode == -int(signal.SIGALRM)


def call_with_deadline(
    fn: Callable[..., Any],
    *args: Any,
    deadline: float | None = None,
    **kwargs: Any,
) -> Any:
    """Run ``fn(*args, **kwargs)`` in a disposable worker, SIGKILLed on deadline.

    This is the single-call face of the preemption machinery, used by
    :class:`~repro.serve.scheduler.RelearnScheduler` to bound one window solve.
    The callable, its arguments, and its return value must be picklable under
    the active start method (under the default ``fork`` they are simply
    inherited).

    Parameters
    ----------
    fn:
        The callable to execute.
    deadline:
        Seconds the call may run.  ``None`` runs ``fn`` inline with no worker
        process and no preemption.

    Returns
    -------
    Any
        Whatever ``fn`` returned.

    Raises
    ------
    PreemptedError
        The deadline elapsed and the worker was killed.
    WorkerCrashError
        The worker died without reporting a result (e.g. a segfault).
    RuntimeError
        ``fn`` raised; the original exception type and message are preserved
        in the error text.
    """
    if deadline is None:
        return fn(*args, **kwargs)
    if deadline <= 0:
        raise ValidationError(f"deadline must be positive, got {deadline}")

    context = _mp_context()
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_call_worker,
        args=(child_conn, deadline, fn, args, kwargs),
        daemon=True,
    )
    process.start()
    child_conn.close()
    deadline_at = time.monotonic() + deadline
    try:
        while True:
            remaining = deadline_at - time.monotonic()
            if parent_conn.poll(max(remaining, 0.0)):
                try:
                    kind, value = parent_conn.recv()
                except (EOFError, OSError, pickle.UnpicklingError):
                    process.join(timeout=5.0)
                    raise WorkerCrashError(
                        "worker died while sending its result "
                        f"(exit code {process.exitcode})"
                    ) from None
                process.join(timeout=5.0)
                if kind == "ok":
                    return value
                raise RuntimeError(value)
            # Deadline elapsed with no message seen by the timed poll.  A
            # result that landed in the race window between that poll and now
            # is preferred over killing/condemning the worker.
            if parent_conn.poll(0):
                continue
            if process.is_alive():
                _terminate(process)
                raise PreemptedError(
                    f"call exceeded the {deadline:.3f}s deadline and was killed"
                )
            process.join(timeout=5.0)
            if _suicide_exit(process.exitcode):
                raise PreemptedError(
                    f"worker killed itself at the {deadline:.3f}s deadline "
                    f"(exit code {process.exitcode})"
                )
            raise WorkerCrashError(
                f"worker died without a result (exit code {process.exitcode})"
            )
    finally:
        parent_conn.close()
        if process.is_alive():  # pragma: no cover - defensive
            _terminate(process)


# -- the streaming engine ------------------------------------------------------


@dataclass
class StreamTelemetry:
    """Execution telemetry of one :meth:`StreamingRunner.stream` pass.

    Attributes
    ----------
    time_to_first_result:
        Seconds from stream start to the first yielded result (``None`` until
        one arrives).
    total_seconds:
        Wall-clock duration of the whole stream.
    n_yielded:
        Results yielded so far (all statuses).
    n_killed:
        Workers the parent SIGKILLed at their deadline.
    n_suicide_exits:
        Workers found dead from their own ``SIGALRM`` suicide timer.
    n_requeued:
        Preempted jobs granted a fresh attempt under the ``"requeue"`` policy.
    killed_pids:
        Process ids of the killed workers (all reaped — useful for asserting
        that no orphans survive).
    """

    time_to_first_result: float | None = None
    total_seconds: float = 0.0
    n_yielded: int = 0
    n_killed: int = 0
    n_suicide_exits: int = 0
    n_requeued: int = 0
    killed_pids: list[int] = field(default_factory=list)

    def preemption_summary(self) -> dict[str, float]:
        """JSON-able preemption counters (the report's ``preemption`` block)."""
        return {
            "n_killed": float(self.n_killed),
            "n_suicide_exits": float(self.n_suicide_exits),
            "n_requeued": float(self.n_requeued),
        }


@dataclass
class _PendingItem:
    """One manifest entry waiting for (or holding) a worker."""

    index: int
    job: LearningJob
    data: np.ndarray | None = None
    fingerprint: str | None = None
    base_attempts: int = 0
    preempt_attempts: int = 0
    enqueued_at: float = 0.0
    span: Span | None = None


@dataclass
class _ActiveWorker:
    """A live worker process bound to one job."""

    item: _PendingItem
    process: mp.process.BaseProcess
    conn: Any
    deadline_at: float | None
    launch_at: float = 0.0
    spool_path: str | None = None


class StreamingRunner:
    """Execute jobs on disposable workers, yielding results as they complete.

    This is the engine underneath :class:`~repro.serve.runner.BatchRunner`;
    use it directly when results should be consumed the moment they exist
    (NDJSON streaming, dashboards, pipelining into downstream work).

    Parameters
    ----------
    n_workers:
        Maximum number of concurrently live worker processes.  ``1`` with no
        ``timeout`` executes jobs inline in the parent (no subprocess).
    cache:
        Optional :class:`~repro.serve.cache.ResultCache`.  Hits are yielded
        immediately without a worker; successful misses are written back.
    timeout:
        Hard per-job deadline in seconds.  A job still running this long
        after its worker started is SIGKILLed and reported ``"preempted"``.
        ``None`` disables preemption.
    max_retries:
        Additional attempts for failing dataset builds and solver runs
        (retries happen inside the worker, within the same deadline).
    preempt_policy:
        ``"fail"`` (default) reports a killed job as ``"preempted"``
        immediately; ``"requeue"`` grants it up to ``preempt_retries`` fresh
        attempts (each with a full deadline) before giving up.
    preempt_retries:
        Fresh attempts granted to a preempted job under the ``"requeue"``
        policy.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When set, every job gets a
        lifecycle span tree (``queue_wait`` → ``worker_spawn`` →
        ``data_materialize`` → ``solve``/``outer_iter`` → ``cache_store``),
        worker-side spans are spooled to NDJSON and merged into the parent
        trace (orphans adopted if the worker died mid-flush), and
        preemption/requeue/cache counters are folded into
        ``tracer.metrics``.
    sample_resources:
        Whether to run a :class:`~repro.obs.ResourceSampler` alongside the
        stream, emitting periodic ``resource`` events (RSS/CPU for the parent
        and each live worker) into the tracer's sink and stamping
        ``worker_peak_rss_bytes`` / ``worker_cpu_seconds`` attributes onto
        each job span.  ``None`` (default) auto-enables whenever a tracer is
        set and the platform supports ``/proc`` sampling; ``False`` forces it
        off, ``True`` requests it (still a no-op off Linux or under
        ``REPRO_OBS_SAMPLE=0``).  Sampling without a tracer has nowhere to
        put events, so it stays off.

    Examples
    --------
    >>> from repro.serve import LearningJob, StreamingRunner
    >>> jobs = [LearningJob(dataset="er2", seed=s, dataset_options={"n_nodes": 12},
    ...                     config={"max_outer_iterations": 2,
    ...                             "max_inner_iterations": 20})
    ...         for s in range(3)]
    >>> for result in StreamingRunner(n_workers=2).stream(jobs):
    ...     _ = result.status  # arrives the moment each job finishes
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        max_retries: int = 0,
        preempt_policy: str = "fail",
        preempt_retries: int = 1,
        tracer: Tracer | None = None,
        sample_resources: bool | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if timeout is not None and timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if preempt_policy not in PREEMPT_POLICIES:
            raise ValidationError(
                f"preempt_policy must be one of {PREEMPT_POLICIES}, "
                f"got {preempt_policy!r}"
            )
        if preempt_retries < 0:
            raise ValidationError(
                f"preempt_retries must be >= 0, got {preempt_retries}"
            )
        self.n_workers = int(n_workers)
        self.cache = cache
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.preempt_policy = preempt_policy
        self.preempt_retries = int(preempt_retries)
        self.tracer = tracer
        self.sample_resources = sample_resources
        self.sampler: ResourceSampler | None = None
        self.telemetry = StreamTelemetry()
        self.solver_seconds_saved = 0.0
        self._spool_dir: str | None = None

    # -- public API ------------------------------------------------------------

    def stream(self, jobs: Sequence[LearningJob]) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per job, in completion order.

        Telemetry for the pass is left on :attr:`telemetry` (and
        :attr:`solver_seconds_saved`) after the generator is exhausted.
        """
        for _, result in self._stream(jobs):
            yield result

    def run(self, jobs, on_result: Callable[[JobResult], None] | None = None):
        """Drain the stream into a :class:`~repro.serve.runner.BatchReport`.

        ``report.results`` is in manifest order regardless of completion
        order.  ``on_result`` (when given) is invoked once per result in
        completion order — this is how the CLI's ``--stream`` mode emits
        NDJSON lines while still producing the final report.

        Returns
        -------
        BatchReport
            Results plus aggregate throughput, cache, and preemption
            telemetry.
        """
        from repro.serve.runner import BatchReport

        jobs = list(jobs)
        slots: list[JobResult | None] = [None] * len(jobs)
        for index, result in self._stream(jobs):
            slots[index] = result
            if on_result is not None:
                on_result(result)
        results = [slot for slot in slots if slot is not None]
        return BatchReport(
            results=results,
            total_seconds=self.telemetry.total_seconds,
            n_workers=self.n_workers,
            solver_seconds_saved=self.solver_seconds_saved,
            cache_stats=self.cache.stats() if self.cache is not None else {},
            time_to_first_result=self.telemetry.time_to_first_result,
            preemption_stats=self.telemetry.preemption_summary(),
        )

    # -- internals --------------------------------------------------------------

    def _stream(self, jobs: Sequence[LearningJob]) -> Iterator[tuple[int, JobResult]]:
        """Yield ``(manifest index, result)`` pairs in completion order."""
        jobs = list(jobs)
        for index, job in enumerate(jobs):
            if job.job_id is None:
                job.job_id = f"job-{index:03d}"

        self.telemetry = StreamTelemetry()
        self.solver_seconds_saved = 0.0
        started = time.monotonic()
        pending: deque[_PendingItem] = deque(
            _PendingItem(index=index, job=job, enqueued_at=started)
            for index, job in enumerate(jobs)
        )
        active: list[_ActiveWorker] = []
        inline = self.n_workers == 1 and self.timeout is None
        self._spool_dir = (
            tempfile.mkdtemp(prefix="repro-trace-")
            if self.tracer is not None and not inline
            else None
        )
        self.sampler = None
        want_sampling = (
            self.sample_resources
            if self.sample_resources is not None
            else self.tracer is not None
        )
        if want_sampling and self.tracer is not None:
            sampler = ResourceSampler(sink=self.tracer.sink)
            if sampler.start():  # no-op (False) off Linux / REPRO_OBS_SAMPLE=0
                sampler.track(os.getpid(), role="parent")
                self.sampler = sampler

        def _finish(item: _PendingItem, result: JobResult) -> tuple[int, JobResult]:
            now = time.monotonic() - started
            if self.telemetry.time_to_first_result is None:
                self.telemetry.time_to_first_result = now
            self.telemetry.total_seconds = now
            self.telemetry.n_yielded += 1
            store = (
                self.cache is not None
                and result.status == "ok"
                and not result.cache_hit  # hits must not overwrite the entry
                and result.fingerprint is not None
            )
            if store and self.tracer is not None and item.span is not None:
                with self.tracer.span("cache_store", parent=item.span):
                    self.cache.put(result.fingerprint, result)
            elif store:
                self.cache.put(result.fingerprint, result)
            if self.tracer is not None:
                self.tracer.metrics.counter(
                    "serve_jobs_total", status=result.status
                ).inc()
                if item.span is not None:
                    item.span.set_attributes(
                        attempts=result.attempts, cache_hit=result.cache_hit
                    )
                    item.span.end(
                        "ok" if result.status == "ok" else result.status
                    )
                    self.tracer.metrics.histogram("serve_job_seconds").observe(
                        item.span.duration
                    )
            return item.index, result

        try:
            while pending or active:
                # Fill free capacity; immediate outcomes (materialization
                # failures, cache hits, inline execution) yield right away.
                while pending and len(active) < self.n_workers:
                    item = pending.popleft()
                    self._start_job_trace(item)
                    immediate = self._prepare(item)
                    if immediate is not None:
                        yield _finish(item, immediate)
                        continue
                    if inline:
                        yield _finish(item, self._run_inline(item))
                        continue
                    active.append(self._launch(item))

                if not active:
                    continue
                self._wait(active)
                now = time.monotonic()
                still_active: list[_ActiveWorker] = []
                for worker in active:
                    outcome, requeue = self._poll_worker(worker, now)
                    if outcome is None and requeue is None:
                        still_active.append(worker)
                    elif requeue is not None:
                        requeue.enqueued_at = time.monotonic()
                        pending.append(requeue)
                    else:
                        yield _finish(worker.item, outcome)
                active = still_active
        finally:
            for worker in active:  # only on generator abandonment / error
                # Cleanup kills are not deadline preemptions: keep them out
                # of the kill telemetry.
                _terminate(worker.process)
                worker.conn.close()
                self._merge_worker_trace(worker)
            if self.sampler is not None:
                self.sampler.stop()
                parent_peak = self.sampler.peak_rss_bytes(os.getpid())
                if self.tracer is not None and parent_peak > 0:
                    self.tracer.metrics.gauge(
                        "serve_peak_rss_bytes", role="parent"
                    ).set(parent_peak)
            if self._spool_dir is not None:
                shutil.rmtree(self._spool_dir, ignore_errors=True)
                self._spool_dir = None
            self.telemetry.total_seconds = time.monotonic() - started

    def _start_job_trace(self, item: _PendingItem) -> None:
        """Open (or reuse, after a requeue) the job span and record the wait.

        The job span is backdated to the enqueue time of the *first* attempt
        so its duration covers the whole lifecycle; each attempt contributes
        its own ``queue_wait`` child span and histogram sample.
        """
        if self.tracer is None:
            return
        now = time.monotonic()
        if item.span is None:
            item.span = self.tracer.span(
                "job", job_id=item.job.job_id, solver=item.job.solver
            )
            item.span.start = item.enqueued_at
        waited = max(now - item.enqueued_at, 0.0)
        self.tracer.record_span(
            "queue_wait",
            start=item.enqueued_at,
            duration=waited,
            parent=item.span,
            attempt=item.preempt_attempts,
        )
        self.tracer.metrics.histogram("serve_queue_wait_seconds").observe(waited)

    def _merge_worker_trace(self, worker: _ActiveWorker) -> None:
        """Fold a finished (or dead) worker's span spool into the parent trace.

        Also synthesizes the ``worker_spawn`` span — the gap between the
        parent's ``process.start()`` and the first monotonic timestamp the
        worker recorded — which is the number the ROADMAP's "startup
        dominates throughput" hypothesis needs pinned.  Workers killed before
        flushing anything simply contribute no spans; partially flushed
        spools have their parentless spans adopted by the job span.

        When resource sampling is on, this is also where the worker's pid
        stops being sampled and its peak RSS / CPU total are stamped onto the
        job span (``worker_peak_rss_bytes`` / ``worker_cpu_seconds``).
        """
        if self.sampler is not None and worker.process.pid is not None:
            peak = self.sampler.untrack(worker.process.pid)
            if worker.item.span is not None and peak["n_samples"]:
                worker.item.span.set_attributes(
                    worker_peak_rss_bytes=peak["peak_rss_bytes"],
                    worker_cpu_seconds=peak["cpu_seconds"],
                )
        if self.tracer is None or worker.spool_path is None:
            return
        item = worker.item
        events = merge_spool(self.tracer, worker.spool_path, adopt_parent=item.span)
        root = next(
            (event for event in events if event.get("name") == "worker"), None
        )
        if root is not None and worker.launch_at:
            self.tracer.record_span(
                "worker_spawn",
                start=worker.launch_at,
                duration=float(root["start"]) - worker.launch_at,
                parent=item.span,
                pid=worker.process.pid,
            )
        try:
            os.unlink(worker.spool_path)
        except OSError:  # pragma: no cover - already gone
            pass
        worker.spool_path = None

    def _prepare(self, item: _PendingItem) -> JobResult | None:
        """Materialize data and consult the cache; a result short-circuits."""
        job = item.job
        if item.data is None:  # a requeued item keeps its materialized data
            span = (
                self.tracer.span("data_materialize", parent=item.span)
                if self.tracer is not None
                else None
            )
            data, error, used_attempts = self._materialize(job)
            if span is not None:
                span.set_attribute("attempts", used_attempts)
                span.end("ok" if data is not None else "error")
            if data is None:
                return JobResult(
                    job_id=job.job_id,
                    solver=job.solver,
                    status="failed",
                    attempts=used_attempts,
                    error=error,
                )
            item.data = data
            item.base_attempts = used_attempts - 1
            if self.cache is not None:
                item.fingerprint = job_fingerprint(job, data)
                cached = self.cache.get(item.fingerprint)
                if cached is not None and cached.status == "ok":
                    self.solver_seconds_saved += cached.elapsed_seconds
                    if self.tracer is not None:
                        self.tracer.metrics.counter("serve_cache_hits_total").inc()
                    return cached.as_cache_hit(job_id=job.job_id)
        return None

    def _materialize(self, job: LearningJob) -> tuple[np.ndarray | None, str | None, int]:
        """Resolve the job's data with retries; returns (data, error, attempts)."""
        error = None
        for attempt in range(1, self.max_retries + 2):
            try:
                return job.resolve_data(), None, attempt
            except Exception as exc:  # noqa: BLE001 - failures become job status
                error = f"{type(exc).__name__}: {exc}"
        return None, error, self.max_retries + 1

    def _run_inline(self, item: _PendingItem) -> JobResult:
        """Execute one job in the parent process (serial, no-deadline path)."""
        if self.tracer is None:
            return _execute_with_retry(
                item.job,
                item.data,
                item.fingerprint,
                self.max_retries,
                item.base_attempts,
            )
        # No subprocess means no spool: the solve spans of execute_job land
        # directly in the parent sink, parented under the job span.
        with activated(self.tracer), self.tracer.use_parent(item.span):
            return _execute_with_retry(
                item.job,
                item.data,
                item.fingerprint,
                self.max_retries,
                item.base_attempts,
            )

    def _launch(self, item: _PendingItem) -> _ActiveWorker:
        """Start a dedicated worker process for one job."""
        context = _mp_context()
        parent_conn, child_conn = context.Pipe(duplex=False)
        job = item.job
        if job.data is not None:
            # The materialized matrix travels as the explicit `data` argument;
            # don't ship a second copy inside the job spec.
            job = copy.copy(job)
            job.data = None
        trace_spec = None
        spool_path: str | None = None
        if self.tracer is not None and self._spool_dir is not None:
            spool_path = os.path.join(
                self._spool_dir,
                f"job-{item.index:03d}-a{item.preempt_attempts}.ndjson",
            )
            trace_spec = _TraceSpec(
                spool_path=spool_path,
                trace_id=self.tracer.trace_id,
                parent_span_id=item.span.span_id if item.span is not None else None,
            )
        process = context.Process(
            target=_job_worker,
            args=(
                child_conn,
                self.timeout,
                job,
                item.data,
                item.fingerprint,
                self.max_retries,
                item.base_attempts,
                backend_module.registry_snapshot(),
                trace_spec,
            ),
            daemon=True,
        )
        launch_at = time.monotonic()
        process.start()
        child_conn.close()
        if self.sampler is not None and process.pid is not None:
            self.sampler.track(process.pid, role="worker", job_id=item.job.job_id)
        deadline_at = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        return _ActiveWorker(
            item=item,
            process=process,
            conn=parent_conn,
            deadline_at=deadline_at,
            launch_at=launch_at,
            spool_path=spool_path,
        )

    def _wait(self, active: list[_ActiveWorker]) -> None:
        """Block until a worker has news, its deadline passes, or a poll tick."""
        from multiprocessing.connection import wait as connection_wait

        now = time.monotonic()
        timeout = _poll_interval()
        for worker in active:
            if worker.deadline_at is not None:
                timeout = min(timeout, max(worker.deadline_at - now, 0.0))
        handles = [worker.conn for worker in active]
        handles.extend(worker.process.sentinel for worker in active)
        connection_wait(handles, timeout=timeout)

    def _poll_worker(
        self, worker: _ActiveWorker, now: float
    ) -> tuple[JobResult | None, _PendingItem | None]:
        """Check one worker for a result, a crash, or a blown deadline.

        Returns ``(result, None)`` when the job finished (any status),
        ``(None, item)`` when a preempted job should be requeued, and
        ``(None, None)`` when the worker is still running.
        """
        item = worker.item
        # Sample liveness BEFORE draining the pipe: a worker that sends its
        # result and exits between the two steps is then caught by the drain
        # (the message is fully buffered before exit), never misclassified as
        # a crash with its completed result discarded.
        exited = worker.process.exitcode is not None
        if worker.conn.poll(0):
            try:
                result: JobResult = worker.conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                return self._dead_worker_outcome(worker, mid_send=True)
            worker.process.join(timeout=5.0)
            worker.conn.close()
            self._merge_worker_trace(worker)
            # Attempts killed on earlier requeued workers are invisible to
            # this worker; fold them in so success and final-preemption paths
            # account alike.
            result.attempts += item.preempt_attempts
            return result, None
        if exited:
            worker.process.join(timeout=5.0)
            return self._dead_worker_outcome(worker, mid_send=False)
        if worker.deadline_at is not None and now >= worker.deadline_at:
            self._record_kill(worker)
            worker.conn.close()
            self._merge_worker_trace(worker)
            return self._preempted_outcome(
                item, f"job exceeded the {self.timeout:.3f}s deadline and was killed"
            )
        return None, None

    def _record_kill(self, worker: _ActiveWorker) -> None:
        """SIGKILL a worker and account for it in the telemetry."""
        pid = worker.process.pid
        _terminate(worker.process)
        self.telemetry.n_killed += 1
        if self.tracer is not None:
            self.tracer.metrics.counter(
                "serve_preemptions_total", kind="parent_kill"
            ).inc()
        if pid is not None:
            self.telemetry.killed_pids.append(pid)

    def _dead_worker_outcome(
        self, worker: _ActiveWorker, mid_send: bool
    ) -> tuple[JobResult | None, _PendingItem | None]:
        """Classify a worker that died without delivering a result."""
        item = worker.item
        worker.conn.close()
        self._merge_worker_trace(worker)
        exitcode = worker.process.exitcode
        # Parent deadline kills are recorded at the kill site, so only the
        # worker's own suicide timer reaches this classifier as a preemption;
        # an external SIGKILL (e.g. the kernel OOM killer) is a plain failure
        # — requeueing it would just repeat the damage.
        if self.timeout is not None and _suicide_exit(exitcode):
            self.telemetry.n_suicide_exits += 1
            if self.tracer is not None:
                self.tracer.metrics.counter(
                    "serve_preemptions_total", kind="suicide"
                ).inc()
            reason = (
                f"worker killed itself at the {self.timeout:.3f}s deadline "
                f"(exit code {exitcode})"
            )
            return self._preempted_outcome(item, reason)
        detail = "while sending its result " if mid_send else ""
        return (
            JobResult(
                job_id=item.job.job_id,
                solver=item.job.solver,
                status="failed",
                attempts=item.base_attempts + 1,
                fingerprint=item.fingerprint,
                error=f"worker crashed {detail}(exit code {exitcode})",
            ),
            None,
        )

    def _preempted_outcome(
        self, item: _PendingItem, reason: str
    ) -> tuple[JobResult | None, _PendingItem | None]:
        """Apply the preemption policy: requeue the job or fail it for good."""
        item.preempt_attempts += 1
        if (
            self.preempt_policy == "requeue"
            and item.preempt_attempts <= self.preempt_retries
        ):
            self.telemetry.n_requeued += 1
            if self.tracer is not None:
                self.tracer.metrics.counter("serve_requeues_total").inc()
            return None, item
        return (
            JobResult(
                job_id=item.job.job_id,
                solver=item.job.solver,
                status="preempted",
                attempts=item.base_attempts + item.preempt_attempts,
                fingerprint=item.fingerprint,
                error=reason,
            ),
            None,
        )
