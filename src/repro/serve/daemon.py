"""Asynchronous job intake: a spool-directory daemon over the worker pool.

The paper's deployment story (Section VI) has learning tasks *arriving* at
the LEAST service continuously — clients submit work, a resident scheduler
feeds a fixed worker fleet, and answers stream back as each task finishes.
:class:`ServeDaemon` is that intake loop: a long-running process that holds
one :class:`~repro.serve.streaming.StreamSession` (and therefore one
persistent pre-forked :class:`~repro.serve.pool.WorkerPool`) open for its
whole life and trades NDJSON with clients through a spool directory.

Spool protocol
--------------

The daemon owns one directory with three children (created on start)::

    spool/
      incoming/   clients atomically drop  <name>.ndjson  submission files
      work/       claimed submissions (renamed out of incoming/)
      results/    <name>.ndjson result streams, one line per finished job

A submission file holds one JSON object per line, each a
:meth:`~repro.serve.job.LearningJob.from_dict` manifest entry plus two
optional daemon keys: ``tenant`` (fairness queue, default ``"default"``) and
``job_id`` (defaulted to ``<name>:<line>`` when omitted).  Clients should
write the file elsewhere and ``os.rename`` it into ``incoming/`` so the
daemon never reads a half-written file; the daemon claims a submission the
same way — an atomic rename into ``work/`` — so multiple pollers never parse
the same file twice.

Results stream back per submission file: the moment a job finishes, one
NDJSON line is appended (and flushed) to ``results/<name>.ndjson``.  Lines
are either job digests (``{"type": "result", ...summary}``) or rejection
records (``{"type": "rejected", "line": n, "reason": ...}``) for malformed
lines and admission failures — a malformed line costs exactly that line,
never the rest of the file.

Scheduling
----------

Accepted jobs wait in per-tenant FIFO queues and are dispatched round-robin
across tenants whenever the session has a free worker, so one tenant's bulk
submission cannot starve another's trickle.  Admission control bounds memory:
once ``max_pending`` jobs are queued, further lines are rejected with
``"queue full"`` rather than buffered without bound.

Shutdown is cooperative: :meth:`request_stop` (or a client touching the
``spool/stop`` sentinel, or SIGTERM/SIGINT under the CLI) stops intake, and
:meth:`run` drains every already-accepted job before closing the session.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any

from repro.exceptions import ValidationError
from repro.serve.job import JobResult, LearningJob
from repro.serve.streaming import StreamingRunner, StreamSession

__all__ = ["ServeDaemon"]

_STOP_SENTINEL = "stop"


class ServeDaemon:
    """Feed a resident :class:`~repro.serve.pool.WorkerPool` from a spool dir.

    Parameters
    ----------
    runner:
        The :class:`~repro.serve.streaming.StreamingRunner` whose session the
        daemon drives — its ``n_workers`` / ``timeout`` / ``soft_timeout`` /
        cache / tracer configuration all apply.
    spool_dir:
        Root of the spool (created, with its ``incoming``/``work``/``results``
        children, if missing).
    max_pending:
        Admission bound on jobs accepted but not yet dispatched; submissions
        past it are rejected with a ``"queue full"`` record.
    poll_interval:
        Seconds :meth:`run` sleeps in when completely idle (no pending work,
        nothing in flight, empty incoming directory).

    Attributes
    ----------
    n_accepted, n_rejected, n_completed:
        Intake/outcome counters for the daemon's lifetime.
    """

    def __init__(
        self,
        runner: StreamingRunner,
        spool_dir: str | os.PathLike[str],
        max_pending: int = 64,
        poll_interval: float = 0.05,
    ) -> None:
        if max_pending < 1:
            raise ValidationError(f"max_pending must be >= 1, got {max_pending}")
        if poll_interval <= 0:
            raise ValidationError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self.runner = runner
        self.spool_dir = Path(spool_dir)
        self.incoming_dir = self.spool_dir / "incoming"
        self.work_dir = self.spool_dir / "work"
        self.results_dir = self.spool_dir / "results"
        for directory in (self.incoming_dir, self.work_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.max_pending = max_pending
        self.poll_interval = poll_interval
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_completed = 0
        self._queues: dict[str, deque[tuple[LearningJob, str, float]]] = {}
        self._rr: deque[str] = deque()  # round-robin order over tenants
        self._stop = False
        self._session: StreamSession | None = None

    # -- intake ----------------------------------------------------------------

    @property
    def n_pending(self) -> int:
        """Jobs accepted into tenant queues but not yet dispatched."""
        return sum(len(queue) for queue in self._queues.values())

    def request_stop(self) -> None:
        """Stop intake after the current step; :meth:`run` then drains."""
        self._stop = True

    def stop_requested(self) -> bool:
        """Whether a stop was requested (API call or ``stop`` sentinel file)."""
        return self._stop or (self.spool_dir / _STOP_SENTINEL).exists()

    def _claim_submissions(self) -> list[Path]:
        """Atomically move every complete submission file into ``work/``.

        The rename is the claim: a file either moves (ours) or is gone
        (another poller's / withdrawn) — never parsed twice, never parsed
        half-written.
        """
        claimed = []
        for path in sorted(self.incoming_dir.glob("*.ndjson")):
            target = self.work_dir / path.name
            try:
                path.rename(target)
            except OSError:
                continue  # withdrawn or claimed elsewhere between glob and rename
            claimed.append(target)
        return claimed

    def _intake(self) -> None:
        """Claim new submissions and enqueue (or reject) every line."""
        for path in self._claim_submissions():
            source = path.stem
            for line_no, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if not line.strip():
                    continue
                self._admit_line(source, line_no, line)

    def _admit_line(self, source: str, line_no: int, line: str) -> None:
        """Parse one submission line into a tenant queue, or reject it."""
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValidationError("submission lines must be JSON objects")
            tenant = payload.pop("tenant", "default")
            if not isinstance(tenant, str) or not tenant:
                raise ValidationError(f"tenant must be a non-empty string, got {tenant!r}")
            payload.setdefault("job_id", f"{source}:{line_no}")
            job = LearningJob.from_dict(payload)
        except (json.JSONDecodeError, ValidationError, TypeError) as exc:
            self._reject(source, line_no, f"malformed submission: {exc}")
            return
        if self.n_pending >= self.max_pending:
            self._reject(source, line_no, "queue full", job_id=job.job_id)
            return
        if tenant not in self._queues:
            self._queues[tenant] = deque()
            self._rr.append(tenant)
        self._queues[tenant].append((job, source, time.monotonic()))
        self.n_accepted += 1

    def _reject(
        self, source: str, line_no: int, reason: str, job_id: str | None = None
    ) -> None:
        """Append one rejection record to the source's result stream."""
        self.n_rejected += 1
        record = {"type": "rejected", "line": line_no, "reason": reason}
        if job_id is not None:
            record["job_id"] = job_id
        self._write_record(source, record)

    # -- dispatch / results ----------------------------------------------------

    def _next_pending(self) -> tuple[LearningJob, str, float] | None:
        """Pop the next job, round-robin across tenants (FIFO within each)."""
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues[tenant]
            if queue:
                return queue.popleft()
        return None

    def _dispatch(self, session: StreamSession) -> None:
        """Fill free workers from the tenant queues; finish instant results."""
        while session.has_capacity():
            entry = self._next_pending()
            if entry is None:
                return
            job, source, enqueued_at = entry
            immediate = session.submit(job, tag=source, enqueued_at=enqueued_at)
            if immediate is not None:  # cache hit / materialization failure
                self._emit(source, immediate)

    def _emit(self, source: str, result: JobResult) -> None:
        """Stream one finished job back as an NDJSON result record."""
        self.n_completed += 1
        self._write_record(source, {"type": "result", **result.summary()})

    def _write_record(self, source: str, record: dict[str, Any]) -> None:
        """Append one record to ``results/<source>.ndjson``, flushed to disk.

        Open-append-close per line keeps the stream crash-consistent: every
        record a client can read is complete, and a daemon restart never
        truncates earlier answers.
        """
        path = self.results_dir / f"{source}.ndjson"
        with path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- main loop -------------------------------------------------------------

    def step(self, timeout: float | None = 0.0) -> int:
        """One scheduler turn: intake → dispatch → poll.  Returns #completed.

        Deterministic and re-entrant — the integration tests drive the daemon
        one step at a time instead of racing a background thread.  ``timeout``
        bounds the poll's wait for worker completions (0 = just sweep).
        """
        if self._session is None:
            self._session = self.runner.open_session()
        if not self.stop_requested():
            self._intake()
        self._dispatch(self._session)
        completed = 0
        for item, result in self._session.poll(timeout):
            self._emit(item.tag, result)
            completed += 1
        # Completions freed workers; refill so the pool never idles while
        # tenant queues hold work.
        self._dispatch(self._session)
        return completed

    def drained(self) -> bool:
        """True when nothing is queued or in flight."""
        in_flight = self._session.in_flight if self._session is not None else 0
        return self.n_pending == 0 and in_flight == 0

    def run(self) -> None:
        """Serve until a stop is requested, then drain and shut the pool down.

        A stop (API, sentinel file, or CLI signal) closes intake immediately;
        every job already accepted still runs to its normal outcome — results
        keep streaming during the drain — before the session (and its worker
        pool) is closed.
        """
        try:
            while not (self.stop_requested() and self.drained()):
                busy = self.step(timeout=self.poll_interval)
                if busy == 0 and self.drained() and not self.stop_requested():
                    time.sleep(self.poll_interval)
        finally:
            self.close()

    def close(self) -> None:
        """Close the session (stopping the worker pool); idempotent."""
        if self._session is not None:
            self._session.close()
            self._session = None
