"""Content-addressed result caching for the serving layer.

A structure-learning job is fully determined by (data, solver, config, seed,
warm-start init), so its result can be cached under a fingerprint of those
inputs and replayed for free when the same job is submitted again.  The paper's
production deployment leans on exactly this property: of the ~100k daily tasks
many are re-submissions of unchanged scenario data, and serving them from a
cache keeps the solver fleet free for genuinely new work.

Two backends are provided:

* :class:`InMemoryCache` — a process-local dictionary, the default for a
  single :class:`~repro.serve.runner.BatchRunner` session;
* :class:`DiskCache` — one pickle file per fingerprint under a directory, so
  results survive across processes and CLI invocations.

Both are optionally *bounded*: ``max_entries`` (both backends) and
``max_bytes`` (:class:`DiskCache`) trigger least-recently-used eviction, so a
long-lived service cannot grow its cache without limit.  Evictions and
corrupt-entry recoveries are counted and reported through :meth:`ResultCache.stats`
alongside the hit/miss counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serve.job import JobResult, LearningJob

__all__ = [
    "fingerprint_array",
    "fingerprint_config",
    "job_fingerprint",
    "ResultCache",
    "InMemoryCache",
    "DiskCache",
]


def _update_with_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())


def fingerprint_array(array: np.ndarray | sp.spmatrix) -> str:
    """Stable hex fingerprint of a dense or sparse matrix.

    The fingerprint covers dtype, shape, and every value, so any change to the
    data produces a different key while re-generating the same dataset (same
    builder, same seed) produces the same one.
    """
    digest = hashlib.sha256()
    if sp.issparse(array):
        csr = array.tocsr()
        csr.sum_duplicates()
        digest.update(b"sparse-csr")
        digest.update(str(csr.shape).encode())
        _update_with_array(digest, csr.data)
        _update_with_array(digest, csr.indices)
        _update_with_array(digest, csr.indptr)
    else:
        digest.update(b"dense")
        _update_with_array(digest, np.asarray(array))
    return digest.hexdigest()


def fingerprint_config(config: Mapping[str, Any]) -> str:
    """Order-insensitive hex fingerprint of a JSON-able config mapping."""
    try:
        canonical = json.dumps(dict(config), sort_keys=True, default=repr)
    except TypeError as exc:  # pragma: no cover - defensive
        raise ValidationError(f"config is not fingerprintable: {exc}") from exc
    return hashlib.sha256(canonical.encode()).hexdigest()


def job_fingerprint(job: "LearningJob", data: np.ndarray) -> str:
    """Content-addressed key of a job: solver ⊕ config ⊕ seed ⊕ data ⊕ init.

    Wave jobs additionally fold the member layout (ids, widths, seeds) into
    the key — the same stacked matrix split at different boundaries is a
    different computation.
    """
    digest = hashlib.sha256()
    digest.update(job.solver.encode())
    digest.update(fingerprint_config(job.config).encode())
    digest.update(repr(job.seed).encode())
    digest.update(fingerprint_array(data).encode())
    if job.init_weights is not None:
        digest.update(fingerprint_array(job.init_weights).encode())
    else:
        digest.update(b"cold-start")
    if job.wave is not None:
        canonical = json.dumps(job.wave, sort_keys=True, default=repr)
        digest.update(b"wave")
        digest.update(canonical.encode())
    return digest.hexdigest()


class ResultCache:
    """Base class: hit/miss/eviction accounting around backend ``_load``/``_store``."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_evicted = 0
        self.corrupt_entries = 0

    # -- backend hooks ---------------------------------------------------------

    def _load(self, key: str) -> "JobResult | None":
        raise NotImplementedError

    def _store(self, key: str, result: "JobResult") -> None:
        raise NotImplementedError

    def _contains(self, key: str) -> bool:
        """Existence check that must NOT count as a use in the LRU order."""
        return self._load(key) is not None

    def _extra_stats(self) -> dict[str, float]:
        """Backend-specific additions to :meth:`stats` (size gauges etc.)."""
        return {}

    # -- public API ------------------------------------------------------------

    def get(self, key: str) -> "JobResult | None":
        """Return the cached result for ``key`` (None on a miss)."""
        result = self._load(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: "JobResult") -> None:
        """Store ``result`` under ``key`` (overwrites silently).

        Bounded backends may evict least-recently-used entries — or decline to
        retain the new entry at all when it alone exceeds the byte budget.
        """
        self._store(key, result)

    def __contains__(self, key: str) -> bool:
        """Membership probe: counts neither as a hit/miss nor as LRU recency."""
        return self._contains(key)

    def stats(self) -> dict[str, float]:
        """Hit/miss/eviction counters plus the hit rate over all lookups.

        Keys common to all backends: ``hits``, ``misses``, ``hit_rate``,
        ``evictions``, ``bytes_evicted``, ``corrupt_entries``.  Backends add
        size gauges (``n_entries``, and ``total_bytes`` for
        :class:`DiskCache`).
        """
        lookups = self.hits + self.misses
        stats = {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "evictions": float(self.evictions),
            "bytes_evicted": float(self.bytes_evicted),
            "corrupt_entries": float(self.corrupt_entries),
        }
        stats.update(self._extra_stats())
        return stats


class InMemoryCache(ResultCache):
    """Process-local LRU-ordered dictionary backend.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of retained results; storing beyond it
        evicts the least-recently-used entry.  ``None`` (default) keeps the
        cache unbounded.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._store_dict: OrderedDict[str, "JobResult"] = OrderedDict()

    def _load(self, key: str) -> "JobResult | None":
        result = self._store_dict.get(key)
        if result is not None:
            self._store_dict.move_to_end(key)
        return result

    def _store(self, key: str, result: "JobResult") -> None:
        self._store_dict[key] = result
        self._store_dict.move_to_end(key)
        while self.max_entries is not None and len(self._store_dict) > self.max_entries:
            self._store_dict.popitem(last=False)
            self.evictions += 1

    def _contains(self, key: str) -> bool:
        """Probe without promoting the entry in the LRU order."""
        return key in self._store_dict

    def _extra_stats(self) -> dict[str, float]:
        """Add the live entry count."""
        return {"n_entries": float(len(self._store_dict))}

    def __len__(self) -> int:
        return len(self._store_dict)


class DiskCache(ResultCache):
    """On-disk backend: one pickle file per fingerprint under ``directory``.

    Parameters
    ----------
    directory:
        Cache directory (created if missing).  Entries written by previous
        processes are picked up and participate in the LRU order.
    max_entries:
        Optional bound on the number of ``.pkl`` entries; exceeding it on a
        store evicts the least-recently-used files.
    max_bytes:
        Optional bound on the total size of all entries in bytes.  Eviction
        removes least-recently-used files until the total fits; an entry
        larger than the whole budget is evicted immediately after being
        written (the cache never retains it).

    Notes
    -----
    Recency is tracked through file modification times: a hit re-touches its
    entry (``os.utime``), so files sort oldest-first in true LRU order even
    across processes.  A corrupt (truncated, unreadable) entry found by a
    lookup is deleted on the spot and counted in ``corrupt_entries`` — the
    next identical job simply re-learns and re-stores it.

    A bounded cache keeps approximate size counters so stores below the
    bound are O(1); the directory is only re-scanned (authoritatively) when
    the counters indicate a bound is exceeded.  With *several processes
    writing the same bounded directory*, each process only counts its own
    writes, so eviction may lag until one writer's own counter trips — the
    bound is then re-established from the authoritative scan.
    """

    def __init__(
        self,
        directory: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValidationError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._bounded = max_entries is not None or max_bytes is not None
        self._approx_entries = 0
        self._approx_bytes = 0
        if self._bounded:
            entries = self._entries()
            self._approx_entries = len(entries)
            self._approx_bytes = sum(size for _, _, size in entries)
            # Re-opening a directory that outgrew the configured bounds (e.g.
            # after a restart with tighter limits) trims it immediately — a
            # get-only workload would otherwise never trigger eviction.
            self._evict_if_needed()

    def _path(self, key: str) -> Path:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ValidationError(f"cache keys must be hex fingerprints, got {key!r}")
        return self.directory / f"{key}.pkl"

    def _contains(self, key: str) -> bool:
        """Probe by file existence: no unpickling, no LRU mtime bump."""
        return self._path(key).exists()

    def _load(self, key: str) -> "JobResult | None":
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            # A truncated or unreadable entry is treated as a miss; deleting
            # it immediately lets the slot be re-learned and re-stored instead
            # of poisoning every future lookup of this fingerprint.
            self.corrupt_entries += 1
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass
            else:
                self._approx_entries = max(self._approx_entries - 1, 0)
                self._approx_bytes = max(self._approx_bytes - size, 0)
            return None
        self._touch(path)
        return result

    def _store(self, key: str, result: "JobResult") -> None:
        path = self._path(key)
        temporary = path.with_suffix(".tmp")
        with temporary.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        if self._bounded:
            try:
                previous_size = path.stat().st_size
            except OSError:
                previous_size = None
            new_size = temporary.stat().st_size
        temporary.replace(path)
        if self._bounded:
            if previous_size is None:
                self._approx_entries += 1
                self._approx_bytes += new_size
            else:  # overwrite: entry count unchanged, size delta only
                self._approx_bytes += new_size - previous_size
            self._evict_if_needed()

    @staticmethod
    def _touch(path: Path) -> None:
        """Mark an entry as recently used (mtime is the LRU clock)."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry evicted concurrently
            pass

    def _entries(self) -> list[tuple[Path, float, int]]:
        """All entries as ``(path, mtime, size)``, oldest (LRU) first."""
        entries = []
        with os.scandir(self.directory) as scan:
            for entry in scan:
                if not entry.name.endswith(".pkl"):
                    continue
                try:
                    stat = entry.stat()
                except OSError:  # pragma: no cover - concurrent removal
                    continue
                entries.append((Path(entry.path), stat.st_mtime, stat.st_size))
        entries.sort(key=lambda entry: entry[1])
        return entries

    def _over_bounds(self, n_entries: int, n_bytes: int) -> bool:
        """True when either configured bound is exceeded."""
        if self.max_entries is not None and n_entries > self.max_entries:
            return True
        return self.max_bytes is not None and n_bytes > self.max_bytes

    def _evict_if_needed(self) -> None:
        """Delete LRU entries until both the entry and byte bounds hold.

        The (cheap, process-local) approximate counters gate the scan: only
        when they report a bound exceeded is the directory re-scanned
        authoritatively and evicted from.
        """
        if not self._over_bounds(self._approx_entries, self._approx_bytes):
            return
        entries = self._entries()
        total_bytes = sum(size for _, _, size in entries)
        while entries and self._over_bounds(len(entries), total_bytes):
            path, _, size = entries.pop(0)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            total_bytes -= size
            self.evictions += 1
            self.bytes_evicted += size
        self._approx_entries = len(entries)
        self._approx_bytes = total_bytes

    def _extra_stats(self) -> dict[str, float]:
        """Add live entry-count and total-size gauges."""
        entries = self._entries()
        return {
            "n_entries": float(len(entries)),
            "total_bytes": float(sum(size for _, _, size in entries)),
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))
