"""Content-addressed result caching for the serving layer.

A structure-learning job is fully determined by (data, solver, config, seed,
warm-start init), so its result can be cached under a fingerprint of those
inputs and replayed for free when the same job is submitted again.  The paper's
production deployment leans on exactly this property: of the ~100k daily tasks
many are re-submissions of unchanged scenario data, and serving them from a
cache keeps the solver fleet free for genuinely new work.

Two backends are provided:

* :class:`InMemoryCache` — a process-local dictionary, the default for a
  single :class:`~repro.serve.runner.BatchRunner` session;
* :class:`DiskCache` — one pickle file per fingerprint under a directory, so
  results survive across processes and CLI invocations.

Both record hit/miss statistics via the shared :class:`ResultCache` base.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serve.job import JobResult, LearningJob

__all__ = [
    "fingerprint_array",
    "fingerprint_config",
    "job_fingerprint",
    "ResultCache",
    "InMemoryCache",
    "DiskCache",
]


def _update_with_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())


def fingerprint_array(array: np.ndarray | sp.spmatrix) -> str:
    """Stable hex fingerprint of a dense or sparse matrix.

    The fingerprint covers dtype, shape, and every value, so any change to the
    data produces a different key while re-generating the same dataset (same
    builder, same seed) produces the same one.
    """
    digest = hashlib.sha256()
    if sp.issparse(array):
        csr = array.tocsr()
        csr.sum_duplicates()
        digest.update(b"sparse-csr")
        digest.update(str(csr.shape).encode())
        _update_with_array(digest, csr.data)
        _update_with_array(digest, csr.indices)
        _update_with_array(digest, csr.indptr)
    else:
        digest.update(b"dense")
        _update_with_array(digest, np.asarray(array))
    return digest.hexdigest()


def fingerprint_config(config: Mapping[str, Any]) -> str:
    """Order-insensitive hex fingerprint of a JSON-able config mapping."""
    try:
        canonical = json.dumps(dict(config), sort_keys=True, default=repr)
    except TypeError as exc:  # pragma: no cover - defensive
        raise ValidationError(f"config is not fingerprintable: {exc}") from exc
    return hashlib.sha256(canonical.encode()).hexdigest()


def job_fingerprint(job: "LearningJob", data: np.ndarray) -> str:
    """Content-addressed key of a job: solver ⊕ config ⊕ seed ⊕ data ⊕ init."""
    digest = hashlib.sha256()
    digest.update(job.solver.encode())
    digest.update(fingerprint_config(job.config).encode())
    digest.update(repr(job.seed).encode())
    digest.update(fingerprint_array(data).encode())
    if job.init_weights is not None:
        digest.update(fingerprint_array(job.init_weights).encode())
    else:
        digest.update(b"cold-start")
    return digest.hexdigest()


class ResultCache:
    """Base class: hit/miss accounting around backend ``_load``/``_store``."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    # -- backend hooks ---------------------------------------------------------

    def _load(self, key: str) -> "JobResult | None":
        raise NotImplementedError

    def _store(self, key: str, result: "JobResult") -> None:
        raise NotImplementedError

    # -- public API ------------------------------------------------------------

    def get(self, key: str) -> "JobResult | None":
        """Return the cached result for ``key`` (None on a miss)."""
        result = self._load(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: "JobResult") -> None:
        """Store ``result`` under ``key`` (overwrites silently)."""
        self._store(key, result)

    def __contains__(self, key: str) -> bool:
        return self._load(key) is not None

    def stats(self) -> dict[str, float]:
        """Hit/miss counters plus the hit rate over all lookups."""
        lookups = self.hits + self.misses
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


class InMemoryCache(ResultCache):
    """Process-local dictionary backend."""

    def __init__(self) -> None:
        super().__init__()
        self._store_dict: dict[str, "JobResult"] = {}

    def _load(self, key: str) -> "JobResult | None":
        return self._store_dict.get(key)

    def _store(self, key: str, result: "JobResult") -> None:
        self._store_dict[key] = result

    def __len__(self) -> int:
        return len(self._store_dict)


class DiskCache(ResultCache):
    """On-disk backend: one pickle file per fingerprint under ``directory``."""

    def __init__(self, directory: str | Path) -> None:
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ValidationError(f"cache keys must be hex fingerprints, got {key!r}")
        return self.directory / f"{key}.pkl"

    def _load(self, key: str) -> "JobResult | None":
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            # A truncated or unreadable entry is treated as a miss rather than
            # poisoning the whole batch.
            return None

    def _store(self, key: str, result: "JobResult") -> None:
        path = self._path(key)
        temporary = path.with_suffix(".tmp")
        with temporary.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temporary.replace(path)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))
