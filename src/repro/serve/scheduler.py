"""Windowed re-learn scheduling with warm starts (the paper's Fliggy loop).

:class:`RelearnScheduler` owns the state that makes consecutive window solves
incremental: after every :meth:`~RelearnScheduler.step` it keeps the learned
weights together with the window's node vocabulary, and seeds the next solve
with the re-aligned, damped previous solution via
:mod:`repro.serve.warm_start`.  The
:class:`~repro.monitoring.pipeline.MonitoringPipeline` delegates its per-window
learning to this class instead of cold-starting LEAST every 30 simulated
minutes.

Per-window iteration counts and timings are recorded in
:attr:`RelearnScheduler.history` so the cold-vs-warm comparison of the serving
benchmark (``benchmarks/bench_serve_throughput.py``) can read them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from repro.core.least import LEAST, LEASTConfig, LEASTResult
from repro.exceptions import ValidationError
from repro.serve.streaming import PreemptedError, call_with_deadline
from repro.serve.warm_start import WarmStartState, prepare_init
from repro.utils.random import RandomState
from repro.utils.timer import Timer
from repro.utils.validation import check_non_negative, check_unit_interval

__all__ = ["WindowStats", "RelearnScheduler"]


@dataclass
class WindowStats:
    """Telemetry of one scheduled window solve.

    Attributes
    ----------
    window_index:
        Zero-based position of the window in the schedule.
    warm_started:
        True when the solve was seeded from the previous window's solution.
    n_nodes, n_shared_nodes:
        Size of the window's vocabulary and its overlap with the previous one.
    n_outer_iterations, n_inner_iterations:
        Solver iteration counts of the window (0 for a preempted window).
    elapsed_seconds:
        Wall-clock duration of the solve (for a preempted window, roughly the
        deadline).
    converged:
        Solver convergence flag (always False for a preempted window).
    preempted:
        True when the window solve was killed at the scheduler's
        ``window_deadline`` instead of finishing.
    """

    window_index: int
    warm_started: bool
    n_nodes: int
    n_shared_nodes: int
    n_outer_iterations: int
    n_inner_iterations: int
    elapsed_seconds: float
    converged: bool
    preempted: bool = False

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view of the window telemetry."""
        return {
            "window_index": self.window_index,
            "warm_started": self.warm_started,
            "n_nodes": self.n_nodes,
            "n_shared_nodes": self.n_shared_nodes,
            "n_outer_iterations": self.n_outer_iterations,
            "n_inner_iterations": self.n_inner_iterations,
            "elapsed_seconds": self.elapsed_seconds,
            "converged": self.converged,
            "preempted": self.preempted,
        }


class RelearnScheduler:
    """Drive repeated window solves, warm-starting each from the last.

    Parameters
    ----------
    least_config:
        Solver configuration shared by every window.
    warm_start:
        When False the scheduler cold-starts every window (useful as the
        baseline in benchmarks; the paper's deployment always warm-starts).
    damping:
        Shrinkage applied to the carried-over weights (1.0 keeps them as-is).
    init_threshold:
        Entries below this magnitude are dropped from the carried-over init.
    min_shared_nodes:
        Fall back to a cold start when fewer nodes than this survive the
        window-to-window vocabulary change.
    warm_inner_scale:
        Inner-iteration budget of a warm-started window as a fraction of
        ``max_inner_iterations``.  Starting from the previous solution, a
        refresh needs far fewer Adam steps per subproblem than a bootstrap;
        0.5 halves the per-window solver cost while leaving newly appearing
        dependencies (the anomalies the monitoring loop exists to catch)
        enough budget to emerge.  1.0 disables the budget cut.
    resume_penalty:
        When True a warm-started window also resumes the augmented-Lagrangian
        schedule at the previous window's final quadratic penalty ρ instead of
        ramping up from ``rho_start``.  Only enable this for re-learns of
        *stationary* data (same underlying graph, fresh samples): it makes
        those converge in one or two outer rounds, but on drifting data the
        immediately-high penalty suppresses new edges before the data term can
        grow them.  Default False.
    window_deadline:
        Optional hard per-window solve budget in seconds.  When set, each
        window's ``fit`` runs on a disposable worker process via
        :func:`repro.serve.streaming.call_with_deadline` and is SIGKILLed if
        it overruns; the window is then recorded as ``preempted`` in
        :attr:`history`, the carried warm-start state is left untouched, and
        :meth:`step` returns a degraded result (the window's init — or zeros —
        with ``converged=False``) so the loop survives one runaway solve.
        ``None`` (default) solves inline with no budget.
    """

    def __init__(
        self,
        least_config: LEASTConfig | None = None,
        warm_start: bool = True,
        damping: float = 0.9,
        init_threshold: float = 0.0,
        min_shared_nodes: int = 1,
        warm_inner_scale: float = 0.5,
        resume_penalty: bool = False,
        window_deadline: float | None = None,
    ) -> None:
        check_unit_interval(damping, "damping")
        check_non_negative(init_threshold, "init_threshold")
        if not 0.0 < warm_inner_scale <= 1.0:
            raise ValidationError(
                f"warm_inner_scale must be in (0, 1], got {warm_inner_scale}"
            )
        if window_deadline is not None and window_deadline <= 0:
            raise ValidationError(
                f"window_deadline must be positive, got {window_deadline}"
            )
        self.least_config = least_config or LEASTConfig()
        self.warm_start = warm_start
        self.damping = damping
        self.init_threshold = init_threshold
        self.min_shared_nodes = max(int(min_shared_nodes), 1)
        self.warm_inner_scale = warm_inner_scale
        self.resume_penalty = resume_penalty
        self.window_deadline = window_deadline
        self.state: WarmStartState | None = None
        self.history: list[WindowStats] = []
        self._previous_rho: float | None = None

    # -- public API ------------------------------------------------------------

    def step(
        self, data: np.ndarray, node_names: Sequence[str], seed: RandomState = None
    ) -> LEASTResult:
        """Solve one window and update the carried warm-start state.

        Parameters
        ----------
        data:
            The window's ``n × d`` (standardized) sample matrix.
        node_names:
            Vocabulary of the window's ``d`` columns, used to re-align the
            previous solution across vocabulary changes.
        seed:
            Seed/generator forwarded to the solver.

        Returns
        -------
        LEASTResult
            The window's solve result.  With a ``window_deadline`` set, a
            preempted window returns a degraded result (its init — or zeros —
            with ``converged=False``) instead of raising.
        """
        names = list(node_names)
        init = None
        shared = 0
        if self.warm_start and self.state is not None:
            shared = len(set(self.state.node_names) & set(names))
            init = prepare_init(
                self.state,
                names,
                damping=self.damping,
                threshold=self.init_threshold,
                min_shared=self.min_shared_nodes,
            )

        config = self.least_config
        if init is not None:
            if self.warm_inner_scale < 1.0:
                config = replace(
                    config,
                    max_inner_iterations=max(
                        int(config.max_inner_iterations * self.warm_inner_scale), 1
                    ),
                )
            if self.resume_penalty and self._previous_rho is not None:
                config = replace(
                    config, rho_start=min(self._previous_rho, config.rho_max)
                )
        solver = LEAST(config)
        timer = Timer()
        preempted = False
        with timer:
            try:
                result = call_with_deadline(
                    solver.fit,
                    data,
                    deadline=self.window_deadline,
                    seed=seed,
                    init_weights=init,
                )
            except PreemptedError:
                preempted = True
                fallback = init if init is not None else np.zeros((len(names),) * 2)
                result = LEASTResult(
                    weights=np.asarray(fallback, dtype=float).copy(),
                    constraint_value=float("inf"),
                    converged=False,
                    n_outer_iterations=0,
                    n_inner_iterations=0,
                )

        if not preempted:
            # A preempted window leaves the carried state and ρ untouched so
            # the next window warm-starts from the last *completed* solve.
            self.state = WarmStartState(
                weights=result.weights.copy(), node_names=names
            )
            self._previous_rho = float(result.log.last("rho", config.rho_start))
        self.history.append(
            WindowStats(
                window_index=len(self.history),
                warm_started=init is not None,
                n_nodes=len(names),
                n_shared_nodes=shared,
                n_outer_iterations=result.n_outer_iterations,
                n_inner_iterations=result.n_inner_iterations,
                elapsed_seconds=timer.elapsed,
                converged=result.converged,
                preempted=preempted,
            )
        )
        return result

    def reset(self) -> None:
        """Forget the carried state and telemetry (next step is cold)."""
        self.state = None
        self.history.clear()
        self._previous_rho = None

    # -- aggregate views ---------------------------------------------------------

    def stats_summary(self) -> dict[str, float]:
        """Totals across all scheduled windows (cold and warm counted apart).

        Warm/cold counts and iteration means cover *completed* solves only —
        preempted windows report 0 iterations and would deflate the means;
        they are tallied separately under ``n_preempted_windows``, so
        ``n_warm_windows + n_cold_windows + n_preempted_windows ==
        n_windows``.
        """
        completed = [stats for stats in self.history if not stats.preempted]
        warm = [stats for stats in completed if stats.warm_started]
        cold = [stats for stats in completed if not stats.warm_started]

        def _mean_inner(windows: list[WindowStats]) -> float:
            if not windows:
                return 0.0
            return sum(s.n_inner_iterations for s in windows) / len(windows)

        return {
            "n_windows": float(len(self.history)),
            "n_warm_windows": float(len(warm)),
            "n_cold_windows": float(len(cold)),
            "n_preempted_windows": float(
                sum(1 for s in self.history if s.preempted)
            ),
            "total_inner_iterations": float(
                sum(s.n_inner_iterations for s in self.history)
            ),
            "total_outer_iterations": float(
                sum(s.n_outer_iterations for s in self.history)
            ),
            "mean_inner_iterations_warm": _mean_inner(warm),
            "mean_inner_iterations_cold": _mean_inner(cold),
            "total_seconds": sum(s.elapsed_seconds for s in self.history),
        }
