"""Windowed re-learn scheduling with warm starts (the paper's Fliggy loop).

:class:`RelearnScheduler` owns the state that makes consecutive window solves
incremental: after every :meth:`~RelearnScheduler.step` it keeps the learned
weights together with the window's node vocabulary, and seeds the next solve
with the re-aligned, damped previous solution via
:mod:`repro.serve.warm_start`.  The
:class:`~repro.monitoring.pipeline.MonitoringPipeline` delegates its per-window
learning to this class instead of cold-starting a solver every 30 simulated
minutes.

Solvers are resolved through :func:`repro.core.backend.make_solver`, so any
registered backend can drive the loop.  Two escalation knobs mirror each
other: ``shard_vocabulary_threshold`` switches a big window to
block-partitioned solving, and ``sparse_vocabulary_threshold`` switches the
default dense LEAST to CSR-end-to-end LEAST-SP — above it no dense ``d × d``
matrix is materialized by the solve, the warm-start alignment, or (when both
knobs fire) the stitched sharded result.

Per-window iteration counts and timings are recorded in
:attr:`RelearnScheduler.history` so the cold-vs-warm comparison of the serving
benchmark (``benchmarks/bench_serve_throughput.py``) can read them directly.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.backend import SolveResult, config_overrides, get_spec, make_solver
from repro.core.least import LEASTConfig
from repro.core.least_sparse import SparseLEASTConfig
from repro.exceptions import ValidationError
from repro.serve.streaming import PreemptedError, call_with_deadline
from repro.serve.warm_start import WarmStartState, prepare_init
from repro.utils.random import RandomState
from repro.utils.timer import Timer
from repro.utils.validation import check_non_negative, check_unit_interval

__all__ = ["WindowStats", "RelearnScheduler"]


@dataclass
class WindowStats:
    """Telemetry of one scheduled window solve.

    Attributes
    ----------
    window_index:
        Zero-based position of the window in the schedule.
    warm_started:
        True when the solve was seeded from the previous window's solution.
    n_nodes, n_shared_nodes:
        Size of the window's vocabulary and its overlap with the previous one.
    n_outer_iterations, n_inner_iterations:
        Solver iteration counts of the window (0 for a preempted window).
    elapsed_seconds:
        Wall-clock duration of the solve (for a preempted window, roughly the
        deadline).
    converged:
        Solver convergence flag (always False for a preempted window).
    preempted:
        True when the window solve was killed at the scheduler's
        ``window_deadline`` instead of finishing.
    sharded:
        True when the window was solved block-partitioned via
        :mod:`repro.shard` because its vocabulary exceeded
        ``shard_vocabulary_threshold``.
    n_blocks:
        Number of blocks of a sharded window's plan (0 for monolithic
        windows).
    n_blocks_unsolved:
        Blocks of a sharded window that failed or were preempted — the
        stitched graph has gaps at their owned nodes.
    solver:
        Registered backend name that solved this window — records when the
        dense → sparse auto-escalation fired.
    """

    window_index: int
    warm_started: bool
    n_nodes: int
    n_shared_nodes: int
    n_outer_iterations: int
    n_inner_iterations: int
    elapsed_seconds: float
    converged: bool
    preempted: bool = False
    sharded: bool = False
    n_blocks: int = 0
    n_blocks_unsolved: int = 0
    solver: str = "least"

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view of the window telemetry."""
        return {
            "window_index": self.window_index,
            "warm_started": self.warm_started,
            "n_nodes": self.n_nodes,
            "n_shared_nodes": self.n_shared_nodes,
            "n_outer_iterations": self.n_outer_iterations,
            "n_inner_iterations": self.n_inner_iterations,
            "elapsed_seconds": self.elapsed_seconds,
            "converged": self.converged,
            "preempted": self.preempted,
            "sharded": self.sharded,
            "n_blocks": self.n_blocks,
            "n_blocks_unsolved": self.n_blocks_unsolved,
            "solver": self.solver,
        }


class RelearnScheduler:
    """Drive repeated window solves, warm-starting each from the last.

    Parameters
    ----------
    least_config:
        Configuration of the dense ``"least"`` backend (used whenever a
        window solves dense).
    solver:
        Registered backend name driving the windows (default ``"least"``).
        Any name in :func:`repro.serve.job.solver_names` works; warm starts
        are converted to the backend's native representation (CSR for sparse
        backends) before seeding.
    prefer_fast:
        When True (and ``solver`` is the default dense ``"least"``), windows
        that solve dense use the fused ``"least_fast"`` backend instead —
        numerically interchangeable with ``"least"`` (the parity suite pins
        the two together) but JIT-compiled when numba is importable.  The
        sparse auto-escalation still wins above
        ``sparse_vocabulary_threshold``; both backends are dense, so warm
        starts carry across unchanged and ``least_config`` drives both.
    sparse_config:
        Configuration of the ``"least_sparse"`` backend, used whenever a
        window solves sparse — because ``solver="least_sparse"`` was chosen
        outright or because ``sparse_vocabulary_threshold`` escalated the
        window.  Defaults to :class:`~repro.core.least_sparse.SparseLEASTConfig`
        defaults — except on sharded windows, where blocks then use the
        per-block correlation support (pass an explicit ``sparse_config``
        to pin ``support`` yourself).
    sparse_vocabulary_threshold:
        When set (and ``solver`` is the default dense ``"least"``), a window
        whose vocabulary has at least this many nodes is solved with
        ``"least_sparse"`` instead — the dense → sparse auto-escalation that
        mirrors ``shard_vocabulary_threshold``.  Above the threshold no
        dense ``d × d`` matrix is materialized anywhere in the window's
        path: the solve is CSR end to end, the carried state stays CSR, and
        warm starts are aligned sparsely.  Windows back under the threshold
        de-escalate to dense and warm-start from the densified carried
        solution.  ``None`` (default) never escalates.
    warm_start:
        When False the scheduler cold-starts every window (useful as the
        baseline in benchmarks; the paper's deployment always warm-starts).
    damping:
        Shrinkage applied to the carried-over weights (1.0 keeps them as-is).
    init_threshold:
        Entries below this magnitude are dropped from the carried-over init.
    min_shared_nodes:
        Fall back to a cold start when fewer nodes than this survive the
        window-to-window vocabulary change.
    warm_inner_scale:
        Inner-iteration budget of a warm-started window as a fraction of
        ``max_inner_iterations``.  Starting from the previous solution, a
        refresh needs far fewer Adam steps per subproblem than a bootstrap;
        0.5 halves the per-window solver cost while leaving newly appearing
        dependencies (the anomalies the monitoring loop exists to catch)
        enough budget to emerge.  1.0 disables the budget cut.
    resume_penalty:
        When True a warm-started window also resumes the augmented-Lagrangian
        schedule at the previous window's final quadratic penalty ρ instead of
        ramping up from ``rho_start``.  Only enable this for re-learns of
        *stationary* data (same underlying graph, fresh samples): it makes
        those converge in one or two outer rounds, but on drifting data the
        immediately-high penalty suppresses new edges before the data term can
        grow them.  Default False.
    window_deadline:
        Optional hard per-window solve budget in seconds.  When set, each
        window's ``fit`` runs on a disposable worker process via
        :func:`repro.serve.streaming.call_with_deadline` and is SIGKILLed if
        it overruns; the window is then recorded as ``preempted`` in
        :attr:`history`, the carried warm-start state is left untouched, and
        :meth:`step` returns a degraded result (the window's init — or zeros —
        with ``converged=False``) so the loop survives one runaway solve.
        ``None`` (default) solves inline with no budget.
    shard_vocabulary_threshold:
        When set, a window whose vocabulary has at least this many nodes is
        solved *block-partitioned* via :mod:`repro.shard` instead of
        monolithically: a :class:`~repro.shard.planner.ShardPlanner`
        decomposes the window, each block runs as a streamed job, and the
        stitched DAG becomes the window's result.  A ``window_deadline`` is
        split across the serial block waves (each block gets
        ``window_deadline / ceil(n_blocks / shard_n_workers)``) so the
        *window* stays bounded, not just each block.
        Sharded windows always solve cold (block solves cannot reuse the
        carried global solution), but they still *update* the carried state
        so the next monolithic window can warm-start from the stitch.
        ``None`` (default) never shards.
    shard_planner:
        Optional pre-configured :class:`~repro.shard.planner.ShardPlanner`
        for sharded windows (defaults are used when omitted).
    shard_n_workers:
        Concurrent block workers for sharded windows.
    shard_edge_threshold:
        ``|weight|`` threshold applied to each block's sub-graph before
        stitching a sharded window (forwarded to
        :class:`~repro.shard.executor.ShardExecutor`).  Raw LEAST outputs
        are near-dense, so stitching unthresholded blocks would be slow and
        its conflict telemetry meaningless; keep this at (or below) the
        threshold the consumer prunes with anyway.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  Each :meth:`step` then runs
        inside a ``window`` span (attributes: window index, solver,
        vocabulary size, warm/cold, sharded, preempted, converged), sharded
        windows nest their plan/block/stitch spans underneath it, and
        warm/cold/preemption counters land in ``tracer.metrics``.
    """

    def __init__(
        self,
        least_config: LEASTConfig | None = None,
        warm_start: bool = True,
        damping: float = 0.9,
        init_threshold: float = 0.0,
        min_shared_nodes: int = 1,
        warm_inner_scale: float = 0.5,
        resume_penalty: bool = False,
        window_deadline: float | None = None,
        shard_vocabulary_threshold: int | None = None,
        shard_planner=None,
        shard_n_workers: int = 1,
        shard_edge_threshold: float = 0.05,
        solver: str = "least",
        prefer_fast: bool = False,
        sparse_config: SparseLEASTConfig | None = None,
        sparse_vocabulary_threshold: int | None = None,
        tracer=None,
    ) -> None:
        check_unit_interval(damping, "damping")
        check_non_negative(init_threshold, "init_threshold")
        if not 0.0 < warm_inner_scale <= 1.0:
            raise ValidationError(
                f"warm_inner_scale must be in (0, 1], got {warm_inner_scale}"
            )
        if window_deadline is not None and window_deadline <= 0:
            raise ValidationError(
                f"window_deadline must be positive, got {window_deadline}"
            )
        if shard_vocabulary_threshold is not None and shard_vocabulary_threshold < 1:
            raise ValidationError(
                "shard_vocabulary_threshold must be >= 1, got "
                f"{shard_vocabulary_threshold}"
            )
        if sparse_vocabulary_threshold is not None and sparse_vocabulary_threshold < 1:
            raise ValidationError(
                "sparse_vocabulary_threshold must be >= 1, got "
                f"{sparse_vocabulary_threshold}"
            )
        get_spec(solver)  # validate against the live registry up front
        self.solver = solver
        self.prefer_fast = bool(prefer_fast)
        if self.prefer_fast:
            get_spec("least_fast")  # fail fast if the fused backend is gone
        self.sparse_config = sparse_config
        self.sparse_vocabulary_threshold = sparse_vocabulary_threshold
        self.least_config = least_config or LEASTConfig()
        self.warm_start = warm_start
        self.damping = damping
        self.init_threshold = init_threshold
        self.min_shared_nodes = max(int(min_shared_nodes), 1)
        self.warm_inner_scale = warm_inner_scale
        self.resume_penalty = resume_penalty
        self.window_deadline = window_deadline
        check_non_negative(shard_edge_threshold, "shard_edge_threshold")
        self.shard_vocabulary_threshold = shard_vocabulary_threshold
        self.shard_planner = shard_planner
        self.shard_n_workers = int(shard_n_workers)
        self.shard_edge_threshold = float(shard_edge_threshold)
        self.tracer = tracer
        self.state: WarmStartState | None = None
        self.history: list[WindowStats] = []
        self.last_shard_result = None
        self._previous_rho: float | None = None

    # -- public API ------------------------------------------------------------

    def step(
        self, data: np.ndarray, node_names: Sequence[str], seed: RandomState = None
    ) -> SolveResult:
        """Solve one window and update the carried warm-start state.

        Parameters
        ----------
        data:
            The window's ``n × d`` (standardized) sample matrix.
        node_names:
            Vocabulary of the window's ``d`` columns, used to re-align the
            previous solution across vocabulary changes.
        seed:
            Seed/generator forwarded to the solver.

        Returns
        -------
        SolveResult
            The window's solve result — dense or CSR weights depending on
            the window's effective backend.  With a ``window_deadline`` set,
            a preempted window returns a degraded result (its init — or
            zeros — with ``converged=False``) instead of raising.
        """
        names = list(node_names)
        solver_name = self._effective_solver(len(names))
        spec = get_spec(solver_name)
        sharded = (
            self.shard_vocabulary_threshold is not None
            and len(names) >= self.shard_vocabulary_threshold
        )
        init = None
        shared = 0
        if (
            not sharded
            and self.warm_start
            and self.state is not None
            and spec.supports_init_weights  # e.g. notears cannot warm-start
        ):
            shared = len(set(self.state.node_names) & set(names))
            init = prepare_init(
                self.state,
                names,
                damping=self.damping,
                threshold=self.init_threshold,
                min_shared=self.min_shared_nodes,
                representation="sparse" if spec.sparse else "dense",
            )

        config = self._config_for(solver_name)
        if init is not None:
            # Guard attribute reads: custom backends may not expose the
            # inner-iteration cap or the rho schedule at all.
            if self.warm_inner_scale < 1.0 and hasattr(config, "max_inner_iterations"):
                config = self._maybe_replace(
                    config,
                    max_inner_iterations=max(
                        int(config.max_inner_iterations * self.warm_inner_scale), 1
                    ),
                )
            if (
                self.resume_penalty
                and self._previous_rho is not None
                and hasattr(config, "rho_start")
            ):
                config = self._maybe_replace(
                    config,
                    rho_start=min(
                        self._previous_rho,
                        getattr(config, "rho_max", self._previous_rho),
                    ),
                )
        timer = Timer()
        preempted = False
        n_blocks = 0
        n_blocks_unsolved = 0
        with contextlib.ExitStack() as stack:
            window_span = None
            if self.tracer is not None:
                # The window span is the ambient parent while the solve runs,
                # so a sharded window's plan/block/stitch spans nest under it.
                window_span = stack.enter_context(
                    self.tracer.span(
                        "window",
                        window_index=len(self.history),
                        solver=solver_name,
                        n_nodes=len(names),
                    )
                )
            if sharded:
                with timer:
                    result, preempted, n_blocks, n_blocks_unsolved = (
                        self._step_sharded(data, names, seed, solver_name)
                    )
            else:
                backend = make_solver(solver_name, config=config)
                fit_kwargs: dict = {}
                solve_span = None
                if self.tracer is not None:
                    solve_span = stack.enter_context(
                        self.tracer.span("solve", solver=solver_name)
                    )
                    if self.window_deadline is None:
                        # Inline solve only: with a deadline the fit runs in a
                        # disposable worker and the hook's spans could not
                        # reach this process's sink.
                        from repro.obs import OuterIterationSpans

                        fit_kwargs["deadline_hooks"] = [
                            OuterIterationSpans(self.tracer, parent=solve_span)
                        ]
                with timer:
                    try:
                        result = call_with_deadline(
                            backend.fit,
                            data,
                            deadline=self.window_deadline,
                            init_weights=init,
                            rng=seed,
                            **fit_kwargs,
                        )
                    except PreemptedError:
                        preempted = True
                        result = self._degraded_result(
                            solver_name, len(names), spec.sparse, init=init
                        )
                if solve_span is not None:
                    solve_span.set_attributes(
                        n_outer_iterations=int(result.n_outer_iterations),
                        converged=bool(result.converged),
                    )
                    if preempted:
                        solve_span.status = "preempted"
            if window_span is not None:
                window_span.set_attributes(
                    warm_started=init is not None,
                    sharded=sharded,
                    preempted=preempted,
                    converged=bool(result.converged),
                )
                if preempted:
                    window_span.status = "preempted"
        if self.tracer is not None:
            self.tracer.metrics.counter(
                "relearn_windows_total", mode="warm" if init is not None else "cold"
            ).inc()
            if preempted:
                self.tracer.metrics.counter(
                    "relearn_window_preemptions_total"
                ).inc()

        if not preempted:
            # A preempted window leaves the carried state and ρ untouched so
            # the next window warm-starts from the last *completed* solve.
            self.state = WarmStartState(
                weights=result.weights.copy(), node_names=names
            )
            # A stitched window has no augmented-Lagrangian trace to resume.
            self._previous_rho = (
                None
                if sharded
                else float(
                    result.log.last("rho", getattr(config, "rho_start", 0.0))
                )
            )
        self.history.append(
            WindowStats(
                window_index=len(self.history),
                warm_started=init is not None,
                n_nodes=len(names),
                n_shared_nodes=shared,
                n_outer_iterations=result.n_outer_iterations,
                n_inner_iterations=result.n_inner_iterations,
                elapsed_seconds=timer.elapsed,
                converged=result.converged,
                preempted=preempted,
                sharded=sharded,
                n_blocks=n_blocks,
                n_blocks_unsolved=n_blocks_unsolved,
                solver=solver_name,
            )
        )
        return result

    # -- solver selection --------------------------------------------------------

    def _effective_solver(self, n_nodes: int) -> str:
        """The backend name for a window, after dense → sparse escalation
        and the ``prefer_fast`` dense substitution."""
        if (
            self.sparse_vocabulary_threshold is not None
            and self.solver == "least"
            and n_nodes >= self.sparse_vocabulary_threshold
        ):
            return "least_sparse"
        if self.prefer_fast and self.solver == "least":
            return "least_fast"
        return self.solver

    def _config_for(self, solver_name: str):
        """The configured dataclass driving ``solver_name`` windows."""
        if solver_name == "least_sparse":
            return self.sparse_config or SparseLEASTConfig()
        if solver_name in ("least", "least_fast"):
            # Both dense backends share least_config; the fast backend
            # upgrades a plain LEASTConfig to FastLEASTConfig itself.
            return self.least_config
        try:
            return get_spec(solver_name).config_class()
        except TypeError as exc:
            raise ValidationError(
                f"the config of solver {solver_name!r} cannot be built without "
                f"arguments ({exc}); the scheduler only drives custom solvers "
                "whose config class has an argless constructor"
            ) from exc

    @staticmethod
    def _maybe_replace(config, **updates):
        """``dataclasses.replace`` restricted to fields the config declares.

        Custom backends may not expose ``max_inner_iterations`` or the
        ``rho`` schedule (callers also guard the attribute *reads* used to
        compute ``updates``); non-dataclass configs pass through untouched.
        """
        if not is_dataclass(config):
            return config
        names = {f.name for f in fields(config)}
        applicable = {k: v for k, v in updates.items() if k in names}
        return replace(config, **applicable) if applicable else config

    @staticmethod
    def _degraded_result(
        solver_name: str, n_nodes: int, sparse: bool, init=None
    ) -> SolveResult:
        """The placeholder result of a lost window (its init, or zeros).

        A sparse window's placeholder is an empty CSR matrix — degrading a
        100k-node window must not be the one code path that allocates
        ``d × d``.
        """
        if init is not None:
            weights = (
                init.copy()
                if sp.issparse(init)
                else np.asarray(init, dtype=float).copy()
            )
        elif sparse:
            weights = sp.csr_matrix((n_nodes, n_nodes))
        else:
            weights = np.zeros((n_nodes, n_nodes))
        return SolveResult(
            solver=solver_name,
            weights=weights,
            constraint_value=float("inf"),
            converged=False,
            n_outer_iterations=0,
            n_inner_iterations=0,
        )

    def _step_sharded(
        self, data: np.ndarray, names: list[str], seed: RandomState, solver_name: str
    ) -> tuple[SolveResult, bool, int, int]:
        """Solve one window block-partitioned via :mod:`repro.shard`.

        Returns ``(result, window_preempted, n_blocks, n_blocks_unsolved)``.
        The window counts as preempted only when *no* block completed — a
        partially stitched window is a degraded success, its gaps recorded in
        :attr:`last_shard_result` (and in the window's
        ``n_blocks_unsolved``).  ``window_deadline`` bounds the *window*:
        each block's hard deadline is the window budget divided by the number
        of serial block waves.  A generator ``seed`` is reduced to one drawn
        integer so sharded windows stay reproducible for a fixed generator
        state.  Blocks run on the window's effective backend
        (``solver_name``); sparse blocks stitch into a CSR result.
        """
        from repro.shard.executor import ShardExecutor
        from repro.shard.planner import ShardPlanner

        spec = get_spec(solver_name)
        planner = self.shard_planner or ShardPlanner()
        plan = (
            planner.plan(data, tracer=self.tracer)
            if self.tracer is not None
            else planner.plan(data)
        )
        base_config = self._config_for(solver_name)
        config_dict = config_overrides(base_config) if is_dataclass(base_config) else {}
        if solver_name == "least_sparse" and self.sparse_config is None:
            # The dumped defaults would pin support="random" and defeat the
            # executor's per-block correlation-screen default; only an
            # explicit sparse_config overrides that choice.
            config_dict["support"] = "correlation"
        block_deadline = None
        if self.window_deadline is not None:
            # Blocks run in ceil(n_blocks / workers) serial waves; giving each
            # block (window / waves) keeps the whole window within budget.
            waves = -(-plan.n_blocks // max(self.shard_n_workers, 1))
            block_deadline = self.window_deadline / max(waves, 1)
        executor = ShardExecutor(
            solver=solver_name,
            config=config_dict,
            n_workers=self.shard_n_workers,
            timeout=block_deadline,
            edge_threshold=self.shard_edge_threshold,
            tracer=self.tracer,
        )
        if seed is None or isinstance(seed, (int, np.integer)):
            base_seed = None if seed is None else int(seed)
        else:
            # A generator seed is reduced to one drawn integer: deterministic
            # for a fixed generator state, so sharded windows reproduce.
            from repro.utils.random import as_generator

            base_seed = int(as_generator(seed).integers(2**31))
        shard_result = executor.run(data, plan, seed=base_seed)
        self.last_shard_result = shard_result

        n_unsolved = plan.n_blocks - shard_result.n_blocks_ok
        if shard_result.n_blocks_ok == 0:
            # Nothing survived: degrade exactly like a preempted monolithic
            # window (zeros, untouched carried state).
            result = self._degraded_result(solver_name, len(names), spec.sparse)
            return result, True, plan.n_blocks, n_unsolved
        ok_results = [r for r in shard_result.block_results if r.status == "ok"]
        result = SolveResult(
            solver=solver_name,
            weights=shard_result.weights,
            constraint_value=0.0,
            converged=shard_result.complete and all(r.converged for r in ok_results),
            n_outer_iterations=sum(r.n_outer_iterations for r in ok_results),
            n_inner_iterations=sum(r.n_inner_iterations for r in ok_results),
        )
        return result, False, plan.n_blocks, n_unsolved

    def reset(self) -> None:
        """Forget the carried state and telemetry (next step is cold)."""
        self.state = None
        self.history.clear()
        self.last_shard_result = None
        self._previous_rho = None

    # -- aggregate views ---------------------------------------------------------

    def stats_summary(self) -> dict[str, float]:
        """Totals across all scheduled windows (cold and warm counted apart).

        Warm/cold counts and iteration means cover *completed* solves only —
        preempted windows report 0 iterations and would deflate the means;
        they are tallied separately under ``n_preempted_windows``, so
        ``n_warm_windows + n_cold_windows + n_preempted_windows ==
        n_windows``.
        """
        completed = [stats for stats in self.history if not stats.preempted]
        warm = [stats for stats in completed if stats.warm_started]
        cold = [stats for stats in completed if not stats.warm_started]

        def _mean_inner(windows: list[WindowStats]) -> float:
            if not windows:
                return 0.0
            return sum(s.n_inner_iterations for s in windows) / len(windows)

        return {
            "n_windows": float(len(self.history)),
            "n_warm_windows": float(len(warm)),
            "n_cold_windows": float(len(cold)),
            "n_preempted_windows": float(
                sum(1 for s in self.history if s.preempted)
            ),
            "total_inner_iterations": float(
                sum(s.n_inner_iterations for s in self.history)
            ),
            "total_outer_iterations": float(
                sum(s.n_outer_iterations for s in self.history)
            ),
            "mean_inner_iterations_warm": _mean_inner(warm),
            "mean_inner_iterations_cold": _mean_inner(cold),
            "total_seconds": sum(s.elapsed_seconds for s in self.history),
        }
