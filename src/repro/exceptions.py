"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class.  More specific subclasses communicate which layer
of the system produced the error (validation of user input, graph invariants,
optimization failures, or data-generation problems).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied arguments fail validation."""


class NotADAGError(ReproError):
    """Raised when a graph that must be acyclic contains a cycle."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to reach its tolerance."""


class DataGenerationError(ReproError):
    """Raised when a synthetic data generator receives an impossible request."""


class DimensionMismatchError(ReproError, ValueError):
    """Raised when array shapes are inconsistent with each other."""


class SoftDeadlineExceeded(RuntimeError):
    """Raised by the soft-deadline hook at an outer-iteration boundary.

    The backend protocol guarantees that a hook raising aborts the solve
    cooperatively; the executing worker catches this exception and reports
    the job ``"preempted"`` without dying, so the pool keeps its process.
    Defined here (not in :mod:`repro.serve.pool`, which re-exports it) so
    that :func:`repro.serve.job.execute_job` can catch it mid-wave without
    a circular import.
    """
